//===- machine/executor.cpp - simulated machine executor --------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "machine/executor.h"

#include "interp/interpreter.h" // pushWasmFrame, callHostFunc
#include "machine/isa.h"
#include "runtime/hooks.h"
#include "runtime/numerics.h"

using namespace wisp;

#define WISP_UNLIKELY(x) __builtin_expect(!!(x), 0)

RunSignal wisp::runExecutor(Thread &T, size_t EntryDepth) {
  assert(!T.Frames.empty() && T.Frames.size() >= EntryDepth);
  assert(T.top().Kind == FrameKind::Jit && "top frame is not jit");

  Instance *Inst = T.Inst;
  uint64_t *S = T.VS.slots();
  uint8_t *Tg = T.VS.tags();

  uint64_t G[NumGpRegs];
  uint64_t FR[NumFpRegs];
  uint64_t Cyc = 0;

  Frame *F = nullptr;
  FuncInstance *Func = nullptr;
  const MCode *Code = nullptr;
  const MInst *Insts = nullptr;
  uint32_t Pc = 0;
  uint32_t Vfp = 0;
  uint8_t *MemData = Inst->HasMemory ? Inst->Memory.data() : nullptr;
  uint64_t MemSize = Inst->HasMemory ? Inst->Memory.byteSize() : 0;

  auto restore = [&]() {
    F = &T.Frames.back();
    Func = F->Func;
    Code = F->Code;
    Insts = Code->Insts.data();
    Pc = F->Pc;
    Vfp = F->Vfp;
    MemData = Inst->HasMemory ? Inst->Memory.data() : nullptr;
    MemSize = Inst->HasMemory ? Inst->Memory.byteSize() : 0;
  };
  auto writeback = [&]() { F->Pc = Pc; };

  restore();

  // The faulting bytecode offset: machine pc of the current instruction
  // (Pc was already advanced) mapped back through the compiler's line
  // table, so JIT tiers report the same trap coordinate as the
  // interpreters. Falls back to the frame's last observed Ip when the
  // pipeline recorded no table (optimizing tier).
  auto trapIp = [&]() { return Code->ipForPc(Pc - 1, F->Ip); };

#define TRAP(Reason)                                                           \
  do {                                                                         \
    writeback();                                                               \
    T.JitCycles += Cyc;                                                        \
    T.setTrap(Reason, trapIp());                                               \
    return RunSignal::Trapped;                                                 \
  } while (0)

#define FLOAT32(Rg) bitsToF32(uint32_t(Rg))
#define FLOAT64(Rg) bitsToF64(Rg)
#define SETF32(Dst, V) Dst = f32ToBits(V)
#define SETF64(Dst, V) Dst = f64ToBits(V)

  for (;;) {
    assert(Pc < Code->Insts.size() && "machine pc out of bounds");
    const MInst &I = Insts[Pc];
    ++Pc;
    ++Cyc;
    switch (I.Op) {
    case MOp::Nop:
      --Cyc; // Nops left by peephole rewriting are elided from the model.
      break;

    // --- Slot traffic ---
    case MOp::LdSlot:
      ++Cyc;
      G[I.A] = S[Vfp + I.Imm];
      break;
    case MOp::LdSlotF:
      ++Cyc;
      FR[I.A] = S[Vfp + I.Imm];
      break;
    case MOp::StSlot:
      ++Cyc;
      S[Vfp + I.Imm] = G[I.A];
      break;
    case MOp::StSlotF:
      ++Cyc;
      S[Vfp + I.Imm] = FR[I.A];
      break;
    case MOp::StTag:
      if (Tg)
        Tg[Vfp + I.Imm] = I.A;
      break;
    case MOp::StSp:
      F->Sp = Vfp + uint32_t(I.Imm);
      break;
    case MOp::ZeroSlots: {
      Cyc += uint64_t(I.Imm2);
      memset(S + Vfp + I.Imm, 0, size_t(I.Imm2) * 8);
      break;
    }

    // --- Moves ---
    case MOp::MovRR:
      G[I.A] = G[I.B];
      break;
    case MOp::MovFF:
      FR[I.A] = FR[I.B];
      break;
    case MOp::MovRI:
      G[I.A] = uint64_t(I.Imm);
      break;
    case MOp::MovFI:
      FR[I.A] = uint64_t(I.Imm);
      break;
    case MOp::RintFG32:
      G[I.A] = uint32_t(FR[I.B]);
      break;
    case MOp::RintFG64:
      G[I.A] = FR[I.B];
      break;
    case MOp::RintGF32:
      FR[I.A] = uint32_t(G[I.B]);
      break;
    case MOp::RintGF64:
      FR[I.A] = G[I.B];
      break;

    // --- i32 ALU ---
#define A32 uint32_t(G[I.B])
#define B32 uint32_t(G[I.C])
    case MOp::Add32:
      G[I.A] = uint32_t(A32 + B32);
      break;
    case MOp::Sub32:
      G[I.A] = uint32_t(A32 - B32);
      break;
    case MOp::Mul32:
      Cyc += 2;
      G[I.A] = uint32_t(A32 * B32);
      break;
    case MOp::DivS32: {
      Cyc += 8;
      int32_t R;
      TrapReason Tr = divS32(int32_t(A32), int32_t(B32), &R);
      if (WISP_UNLIKELY(Tr != TrapReason::None))
        TRAP(Tr);
      G[I.A] = uint32_t(R);
      break;
    }
    case MOp::DivU32: {
      Cyc += 8;
      uint32_t R;
      TrapReason Tr = divU32(A32, B32, &R);
      if (WISP_UNLIKELY(Tr != TrapReason::None))
        TRAP(Tr);
      G[I.A] = R;
      break;
    }
    case MOp::RemS32: {
      Cyc += 8;
      int32_t R;
      TrapReason Tr = remS32(int32_t(A32), int32_t(B32), &R);
      if (WISP_UNLIKELY(Tr != TrapReason::None))
        TRAP(Tr);
      G[I.A] = uint32_t(R);
      break;
    }
    case MOp::RemU32: {
      Cyc += 8;
      uint32_t R;
      TrapReason Tr = remU32(A32, B32, &R);
      if (WISP_UNLIKELY(Tr != TrapReason::None))
        TRAP(Tr);
      G[I.A] = R;
      break;
    }
    case MOp::And32:
      G[I.A] = A32 & B32;
      break;
    case MOp::Or32:
      G[I.A] = A32 | B32;
      break;
    case MOp::Xor32:
      G[I.A] = A32 ^ B32;
      break;
    case MOp::Shl32:
      G[I.A] = shl32(A32, B32);
      break;
    case MOp::ShrS32:
      G[I.A] = uint32_t(shrS32(int32_t(A32), B32));
      break;
    case MOp::ShrU32:
      G[I.A] = shrU32(A32, B32);
      break;
    case MOp::Rotl32:
      G[I.A] = rotl32(A32, B32);
      break;
    case MOp::Rotr32:
      G[I.A] = rotr32(A32, B32);
      break;
    case MOp::AddI32:
      G[I.A] = uint32_t(A32 + uint32_t(I.Imm));
      break;
    case MOp::MulI32:
      Cyc += 2;
      G[I.A] = uint32_t(A32 * uint32_t(I.Imm));
      break;
    case MOp::AndI32:
      G[I.A] = A32 & uint32_t(I.Imm);
      break;
    case MOp::OrI32:
      G[I.A] = A32 | uint32_t(I.Imm);
      break;
    case MOp::XorI32:
      G[I.A] = A32 ^ uint32_t(I.Imm);
      break;
    case MOp::ShlI32:
      G[I.A] = shl32(A32, uint32_t(I.Imm));
      break;
    case MOp::ShrSI32:
      G[I.A] = uint32_t(shrS32(int32_t(A32), uint32_t(I.Imm)));
      break;
    case MOp::ShrUI32:
      G[I.A] = shrU32(A32, uint32_t(I.Imm));
      break;
    case MOp::Clz32:
      G[I.A] = clz32(A32);
      break;
    case MOp::Ctz32:
      G[I.A] = ctz32(A32);
      break;
    case MOp::Popcnt32:
      G[I.A] = popcnt32(A32);
      break;
    case MOp::Eqz32:
      G[I.A] = A32 == 0;
      break;
    case MOp::Ext8S32:
      G[I.A] = uint32_t(int32_t(int8_t(uint8_t(A32))));
      break;
    case MOp::Ext16S32:
      G[I.A] = uint32_t(int32_t(int16_t(uint16_t(A32))));
      break;
    case MOp::CmpSet32:
      G[I.A] = evalCond32(Cond(I.D), A32, B32);
      break;
    case MOp::CmpSetI32:
      G[I.A] = evalCond32(Cond(I.D), A32, uint32_t(I.Imm));
      break;

    // --- i64 ALU ---
#define A64 G[I.B]
#define B64 G[I.C]
    case MOp::Add64:
      G[I.A] = A64 + B64;
      break;
    case MOp::Sub64:
      G[I.A] = A64 - B64;
      break;
    case MOp::Mul64:
      Cyc += 2;
      G[I.A] = A64 * B64;
      break;
    case MOp::DivS64: {
      Cyc += 10;
      int64_t R;
      TrapReason Tr = divS64(int64_t(A64), int64_t(B64), &R);
      if (WISP_UNLIKELY(Tr != TrapReason::None))
        TRAP(Tr);
      G[I.A] = uint64_t(R);
      break;
    }
    case MOp::DivU64: {
      Cyc += 10;
      uint64_t R;
      TrapReason Tr = divU64(A64, B64, &R);
      if (WISP_UNLIKELY(Tr != TrapReason::None))
        TRAP(Tr);
      G[I.A] = R;
      break;
    }
    case MOp::RemS64: {
      Cyc += 10;
      int64_t R;
      TrapReason Tr = remS64(int64_t(A64), int64_t(B64), &R);
      if (WISP_UNLIKELY(Tr != TrapReason::None))
        TRAP(Tr);
      G[I.A] = uint64_t(R);
      break;
    }
    case MOp::RemU64: {
      Cyc += 10;
      uint64_t R;
      TrapReason Tr = remU64(A64, B64, &R);
      if (WISP_UNLIKELY(Tr != TrapReason::None))
        TRAP(Tr);
      G[I.A] = R;
      break;
    }
    case MOp::And64:
      G[I.A] = A64 & B64;
      break;
    case MOp::Or64:
      G[I.A] = A64 | B64;
      break;
    case MOp::Xor64:
      G[I.A] = A64 ^ B64;
      break;
    case MOp::Shl64:
      G[I.A] = shl64(A64, B64);
      break;
    case MOp::ShrS64:
      G[I.A] = uint64_t(shrS64(int64_t(A64), B64));
      break;
    case MOp::ShrU64:
      G[I.A] = shrU64(A64, B64);
      break;
    case MOp::Rotl64:
      G[I.A] = rotl64(A64, B64);
      break;
    case MOp::Rotr64:
      G[I.A] = rotr64(A64, B64);
      break;
    case MOp::AddI64:
      G[I.A] = A64 + uint64_t(I.Imm);
      break;
    case MOp::MulI64:
      Cyc += 2;
      G[I.A] = A64 * uint64_t(I.Imm);
      break;
    case MOp::AndI64:
      G[I.A] = A64 & uint64_t(I.Imm);
      break;
    case MOp::OrI64:
      G[I.A] = A64 | uint64_t(I.Imm);
      break;
    case MOp::XorI64:
      G[I.A] = A64 ^ uint64_t(I.Imm);
      break;
    case MOp::ShlI64:
      G[I.A] = shl64(A64, uint64_t(I.Imm));
      break;
    case MOp::ShrSI64:
      G[I.A] = uint64_t(shrS64(int64_t(A64), uint64_t(I.Imm)));
      break;
    case MOp::ShrUI64:
      G[I.A] = shrU64(A64, uint64_t(I.Imm));
      break;
    case MOp::Clz64:
      G[I.A] = clz64(A64);
      break;
    case MOp::Ctz64:
      G[I.A] = ctz64(A64);
      break;
    case MOp::Popcnt64:
      G[I.A] = popcnt64(A64);
      break;
    case MOp::Eqz64:
      G[I.A] = A64 == 0;
      break;
    case MOp::Ext8S64:
      G[I.A] = uint64_t(int64_t(int8_t(uint8_t(A64))));
      break;
    case MOp::Ext16S64:
      G[I.A] = uint64_t(int64_t(int16_t(uint16_t(A64))));
      break;
    case MOp::Ext32S64:
      G[I.A] = uint64_t(int64_t(int32_t(uint32_t(A64))));
      break;
    case MOp::CmpSet64:
      G[I.A] = evalCond64(Cond(I.D), A64, B64);
      break;
    case MOp::CmpSetI64:
      G[I.A] = evalCond64(Cond(I.D), A64, uint64_t(I.Imm));
      break;
    case MOp::Wrap64:
      G[I.A] = uint32_t(G[I.B]);
      break;
    case MOp::ExtS3264:
      G[I.A] = uint64_t(int64_t(int32_t(uint32_t(G[I.B]))));
      break;

    // --- f32 ALU ---
#define AF FLOAT32(FR[I.B])
#define BF FLOAT32(FR[I.C])
    case MOp::AddF32:
      Cyc += 2;
      SETF32(FR[I.A], canonNaN(AF + BF));
      break;
    case MOp::SubF32:
      Cyc += 2;
      SETF32(FR[I.A], canonNaN(AF - BF));
      break;
    case MOp::MulF32:
      Cyc += 3;
      SETF32(FR[I.A], canonNaN(AF * BF));
      break;
    case MOp::DivF32:
      Cyc += 8;
      SETF32(FR[I.A], canonNaN(AF / BF));
      break;
    case MOp::MinF32:
      Cyc += 2;
      SETF32(FR[I.A], wasmMin(AF, BF));
      break;
    case MOp::MaxF32:
      Cyc += 2;
      SETF32(FR[I.A], wasmMax(AF, BF));
      break;
    case MOp::CopysignF32:
      SETF32(FR[I.A], std::copysign(AF, BF));
      break;
    case MOp::AbsF32:
      SETF32(FR[I.A], std::fabs(AF));
      break;
    case MOp::NegF32:
      FR[I.A] = FR[I.B] ^ 0x80000000u;
      break;
    case MOp::CeilF32:
      Cyc += 2;
      SETF32(FR[I.A], std::ceil(AF));
      break;
    case MOp::FloorF32:
      Cyc += 2;
      SETF32(FR[I.A], std::floor(AF));
      break;
    case MOp::TruncF32:
      Cyc += 2;
      SETF32(FR[I.A], std::trunc(AF));
      break;
    case MOp::NearestF32:
      Cyc += 2;
      SETF32(FR[I.A], wasmNearest(AF));
      break;
    case MOp::SqrtF32:
      Cyc += 8;
      SETF32(FR[I.A], canonNaN(std::sqrt(AF)));
      break;

    // --- f64 ALU ---
#define AD FLOAT64(FR[I.B])
#define BD FLOAT64(FR[I.C])
    case MOp::AddF64:
      Cyc += 2;
      SETF64(FR[I.A], canonNaN(AD + BD));
      break;
    case MOp::SubF64:
      Cyc += 2;
      SETF64(FR[I.A], canonNaN(AD - BD));
      break;
    case MOp::MulF64:
      Cyc += 3;
      SETF64(FR[I.A], canonNaN(AD * BD));
      break;
    case MOp::DivF64:
      Cyc += 10;
      SETF64(FR[I.A], canonNaN(AD / BD));
      break;
    case MOp::MinF64:
      Cyc += 2;
      SETF64(FR[I.A], wasmMin(AD, BD));
      break;
    case MOp::MaxF64:
      Cyc += 2;
      SETF64(FR[I.A], wasmMax(AD, BD));
      break;
    case MOp::CopysignF64:
      SETF64(FR[I.A], std::copysign(AD, BD));
      break;
    case MOp::AbsF64:
      SETF64(FR[I.A], std::fabs(AD));
      break;
    case MOp::NegF64:
      FR[I.A] = FR[I.B] ^ 0x8000000000000000ull;
      break;
    case MOp::CeilF64:
      Cyc += 2;
      SETF64(FR[I.A], std::ceil(AD));
      break;
    case MOp::FloorF64:
      Cyc += 2;
      SETF64(FR[I.A], std::floor(AD));
      break;
    case MOp::TruncF64:
      Cyc += 2;
      SETF64(FR[I.A], std::trunc(AD));
      break;
    case MOp::NearestF64:
      Cyc += 2;
      SETF64(FR[I.A], wasmNearest(AD));
      break;
    case MOp::SqrtF64:
      Cyc += 10;
      SETF64(FR[I.A], canonNaN(std::sqrt(AD)));
      break;
    case MOp::CmpSetF32:
      G[I.A] = evalCondF(FCond(I.D), AF, BF);
      break;
    case MOp::CmpSetF64:
      G[I.A] = evalCondF(FCond(I.D), AD, BD);
      break;

    // --- Conversions ---
#define TRUNC_CASE(Name, View, ToType)                                        \
  case MOp::Name: {                                                           \
    Cyc += 4;                                                                  \
    ToType R;                                                                  \
    TrapReason Tr = truncChecked(View, &R);                                    \
    if (WISP_UNLIKELY(Tr != TrapReason::None))                                 \
      TRAP(Tr);                                                                \
    G[I.A] = uint64_t(std::make_unsigned_t<ToType>(R));                        \
    break;                                                                     \
  }
      TRUNC_CASE(TruncF32I32S, FLOAT32(FR[I.B]), int32_t)
      TRUNC_CASE(TruncF32I32U, FLOAT32(FR[I.B]), uint32_t)
      TRUNC_CASE(TruncF64I32S, FLOAT64(FR[I.B]), int32_t)
      TRUNC_CASE(TruncF64I32U, FLOAT64(FR[I.B]), uint32_t)
      TRUNC_CASE(TruncF32I64S, FLOAT32(FR[I.B]), int64_t)
      TRUNC_CASE(TruncF32I64U, FLOAT32(FR[I.B]), uint64_t)
      TRUNC_CASE(TruncF64I64S, FLOAT64(FR[I.B]), int64_t)
      TRUNC_CASE(TruncF64I64U, FLOAT64(FR[I.B]), uint64_t)
#define TRUNCSAT_CASE(Name, View, ToType)                                      \
  case MOp::Name:                                                              \
    Cyc += 4;                                                                  \
    G[I.A] = uint64_t(std::make_unsigned_t<ToType>(                            \
        truncSat<decltype(View), ToType>(View)));                              \
    break;
      TRUNCSAT_CASE(TruncSatF32I32S, FLOAT32(FR[I.B]), int32_t)
      TRUNCSAT_CASE(TruncSatF32I32U, FLOAT32(FR[I.B]), uint32_t)
      TRUNCSAT_CASE(TruncSatF64I32S, FLOAT64(FR[I.B]), int32_t)
      TRUNCSAT_CASE(TruncSatF64I32U, FLOAT64(FR[I.B]), uint32_t)
      TRUNCSAT_CASE(TruncSatF32I64S, FLOAT32(FR[I.B]), int64_t)
      TRUNCSAT_CASE(TruncSatF32I64U, FLOAT32(FR[I.B]), uint64_t)
      TRUNCSAT_CASE(TruncSatF64I64S, FLOAT64(FR[I.B]), int64_t)
      TRUNCSAT_CASE(TruncSatF64I64U, FLOAT64(FR[I.B]), uint64_t)
    case MOp::ConvI32SF32:
      Cyc += 3;
      SETF32(FR[I.A], float(int32_t(uint32_t(G[I.B]))));
      break;
    case MOp::ConvI32UF32:
      Cyc += 3;
      SETF32(FR[I.A], float(uint32_t(G[I.B])));
      break;
    case MOp::ConvI64SF32:
      Cyc += 3;
      SETF32(FR[I.A], float(int64_t(G[I.B])));
      break;
    case MOp::ConvI64UF32:
      Cyc += 3;
      SETF32(FR[I.A], float(G[I.B]));
      break;
    case MOp::ConvI32SF64:
      Cyc += 3;
      SETF64(FR[I.A], double(int32_t(uint32_t(G[I.B]))));
      break;
    case MOp::ConvI32UF64:
      Cyc += 3;
      SETF64(FR[I.A], double(uint32_t(G[I.B])));
      break;
    case MOp::ConvI64SF64:
      Cyc += 3;
      SETF64(FR[I.A], double(int64_t(G[I.B])));
      break;
    case MOp::ConvI64UF64:
      Cyc += 3;
      SETF64(FR[I.A], double(G[I.B]));
      break;
    case MOp::DemoteF64:
      Cyc += 2;
      SETF32(FR[I.A], float(FLOAT64(FR[I.B])));
      break;
    case MOp::PromoteF32:
      Cyc += 2;
      SETF64(FR[I.A], double(FLOAT32(FR[I.B])));
      break;

    // --- Memory ---
#define LOAD_CASE(Name, CType, Conv, Dst)                                      \
  case MOp::Name: {                                                           \
    Cyc += 2;                                                                  \
    uint64_t EA = uint64_t(uint32_t(G[I.B])) + uint64_t(I.Imm);                \
    if (WISP_UNLIKELY(EA + sizeof(CType) > MemSize))                           \
      TRAP(TrapReason::MemOutOfBounds);                                        \
    CType V;                                                                   \
    memcpy(&V, MemData + EA, sizeof(CType));                                   \
    Dst[I.A] = Conv;                                                           \
    break;                                                                     \
  }
      LOAD_CASE(LdM8S32, int8_t, uint32_t(int32_t(V)), G)
      LOAD_CASE(LdM8U32, uint8_t, V, G)
      LOAD_CASE(LdM16S32, int16_t, uint32_t(int32_t(V)), G)
      LOAD_CASE(LdM16U32, uint16_t, V, G)
      LOAD_CASE(LdM32, uint32_t, V, G)
      LOAD_CASE(LdM8S64, int8_t, uint64_t(int64_t(V)), G)
      LOAD_CASE(LdM8U64, uint8_t, V, G)
      LOAD_CASE(LdM16S64, int16_t, uint64_t(int64_t(V)), G)
      LOAD_CASE(LdM16U64, uint16_t, V, G)
      LOAD_CASE(LdM32S64, int32_t, uint64_t(int64_t(V)), G)
      LOAD_CASE(LdM32U64, uint32_t, V, G)
      LOAD_CASE(LdM64, uint64_t, V, G)
      LOAD_CASE(LdMF32, uint32_t, V, FR)
      LOAD_CASE(LdMF64, uint64_t, V, FR)
#define STORE_CASE(Name, CType, Src)                                           \
  case MOp::Name: {                                                           \
    Cyc += 2;                                                                  \
    uint64_t EA = uint64_t(uint32_t(G[I.B])) + uint64_t(I.Imm);                \
    if (WISP_UNLIKELY(EA + sizeof(CType) > MemSize))                           \
      TRAP(TrapReason::MemOutOfBounds);                                        \
    CType V = CType(Src[I.A]);                                                 \
    memcpy(MemData + EA, &V, sizeof(CType));                                   \
    Inst->Memory.noteWrite(EA + sizeof(CType));                                \
    break;                                                                     \
  }
      STORE_CASE(StM8, uint8_t, G)
      STORE_CASE(StM16, uint16_t, G)
      STORE_CASE(StM32, uint32_t, G)
      STORE_CASE(StM64, uint64_t, G)
      STORE_CASE(StMF32, uint32_t, FR)
      STORE_CASE(StMF64, uint64_t, FR)
    case MOp::MemSize:
      G[I.A] = Inst->Memory.pages();
      break;
    case MOp::MemGrow: {
      Cyc += 20;
      int64_t Old = Inst->Memory.grow(uint32_t(G[I.B]));
      G[I.A] = uint64_t(uint32_t(Old));
      MemData = Inst->Memory.data();
      MemSize = Inst->Memory.byteSize();
      break;
    }
    case MOp::MemCopy: {
      uint64_t Dst = uint32_t(G[I.A]);
      uint64_t Src = uint32_t(G[I.B]);
      uint64_t Len = uint32_t(G[I.C]);
      Cyc += Len / 8 + 2;
      if (WISP_UNLIKELY(Src + Len > MemSize || Dst + Len > MemSize))
        TRAP(TrapReason::MemOutOfBounds);
      memmove(MemData + Dst, MemData + Src, size_t(Len));
      Inst->Memory.noteWrite(Dst + Len);
      break;
    }
    case MOp::MemFill: {
      uint64_t Dst = uint32_t(G[I.A]);
      uint32_t Val = uint32_t(G[I.B]);
      uint64_t Len = uint32_t(G[I.C]);
      Cyc += Len / 8 + 2;
      if (WISP_UNLIKELY(Dst + Len > MemSize))
        TRAP(TrapReason::MemOutOfBounds);
      memset(MemData + Dst, int(Val & 0xff), size_t(Len));
      Inst->Memory.noteWrite(Dst + Len);
      break;
    }
    case MOp::GlobGet:
      ++Cyc;
      G[I.A] = Inst->Globals[size_t(I.Imm)].Bits;
      break;
    case MOp::GlobGetF:
      ++Cyc;
      FR[I.A] = Inst->Globals[size_t(I.Imm)].Bits;
      break;
    case MOp::GlobSet:
      ++Cyc;
      Inst->Globals[size_t(I.Imm)].Bits = G[I.A];
      break;
    case MOp::GlobSetF:
      ++Cyc;
      Inst->Globals[size_t(I.Imm)].Bits = FR[I.A];
      break;

    // --- Control ---
    case MOp::Jmp:
      Pc = uint32_t(I.Imm);
      break;
    case MOp::JmpIf:
      if (G[I.A] & 0xffffffffu)
        Pc = uint32_t(I.Imm);
      break;
    case MOp::JmpIfZ:
      if (!(G[I.A] & 0xffffffffu))
        Pc = uint32_t(I.Imm);
      break;
    case MOp::BrCmp32:
      if (evalCond32(Cond(I.D), uint32_t(G[I.A]), uint32_t(G[I.B])))
        Pc = uint32_t(I.Imm);
      break;
    case MOp::BrCmpI32:
      if (evalCond32(Cond(I.D), uint32_t(G[I.A]), uint32_t(I.Imm2)))
        Pc = uint32_t(I.Imm);
      break;
    case MOp::BrCmp64:
      if (evalCond64(Cond(I.D), G[I.A], G[I.B]))
        Pc = uint32_t(I.Imm);
      break;
    case MOp::BrCmpI64:
      if (evalCond64(Cond(I.D), G[I.A], uint64_t(I.Imm2)))
        Pc = uint32_t(I.Imm);
      break;
    case MOp::BrTable: {
      Cyc += 2;
      const std::vector<uint32_t> &Table = Code->BrTables[size_t(I.Imm)];
      uint64_t Idx = G[I.A] & 0xffffffffu;
      if (Idx >= Table.size())
        Idx = Table.size() - 1;
      Pc = Table[size_t(Idx)];
      break;
    }

    case MOp::CallDirect: {
      Cyc += 4;
      FuncInstance *Callee = Inst->func(uint32_t(I.Imm));
      uint32_t ArgBase = Vfp + uint32_t(I.Imm2);
      writeback();
      if (WISP_UNLIKELY(T.TierUpThreshold) && !Callee->UseJit &&
          !Callee->Host) {
        // Lazy/tiered compilation of callees from JIT code.
        Callee->HotCount += 8;
        if (Callee->HotCount >= T.TierUpThreshold && T.Hooks)
          T.Hooks->onFuncHot(T, Callee);
      }
      if (Callee->Host) {
        T.JitCycles += Cyc + 20;
        Cyc = 0;
        if (WISP_UNLIKELY(!callHostFunc(T, Callee, ArgBase, 0))) {
          // Attribute the host error to the call's bytecode only on the
          // trap path; the line-table search is not worth paying on every
          // successful host call.
          T.TrapIp = trapIp();
          return RunSignal::Trapped;
        }
        MemData = Inst->HasMemory ? Inst->Memory.data() : nullptr;
        MemSize = Inst->HasMemory ? Inst->Memory.byteSize() : 0;
        break;
      }
      if (!pushWasmFrame(T, Callee, ArgBase)) {
        T.JitCycles += Cyc;
        return RunSignal::Trapped;
      }
      if (T.Frames.back().Kind != FrameKind::Jit) {
        T.JitCycles += Cyc;
        Cyc = 0;
        return RunSignal::SwitchTier;
      }
      restore();
      break;
    }

    case MOp::CallIndirect: {
      Cyc += 6;
      Table &Tab = Inst->Tables[0];
      uint64_t EIdx = G[I.A] & 0xffffffffu;
      if (WISP_UNLIKELY(EIdx >= Tab.Elems.size()))
        TRAP(TrapReason::TableOutOfBounds);
      uint64_t Bits = Tab.Elems[size_t(EIdx)];
      if (WISP_UNLIKELY(Bits == 0))
        TRAP(TrapReason::NullFuncRef);
      FuncInstance *Callee = Inst->func(uint32_t(Bits - 1));
      if (WISP_UNLIKELY(
              !(*Callee->Type == Inst->M->Types[uint32_t(I.Imm)])))
        TRAP(TrapReason::IndirectCallTypeMismatch);
      uint32_t ArgBase = Vfp + uint32_t(I.Imm2);
      writeback();
      if (WISP_UNLIKELY(T.TierUpThreshold) && !Callee->UseJit &&
          !Callee->Host) {
        Callee->HotCount += 8;
        if (Callee->HotCount >= T.TierUpThreshold && T.Hooks)
          T.Hooks->onFuncHot(T, Callee);
      }
      if (Callee->Host) {
        T.JitCycles += Cyc + 20;
        Cyc = 0;
        if (WISP_UNLIKELY(!callHostFunc(T, Callee, ArgBase, 0))) {
          // Attribute the host error to the call's bytecode only on the
          // trap path; the line-table search is not worth paying on every
          // successful host call.
          T.TrapIp = trapIp();
          return RunSignal::Trapped;
        }
        MemData = Inst->HasMemory ? Inst->Memory.data() : nullptr;
        MemSize = Inst->HasMemory ? Inst->Memory.byteSize() : 0;
        break;
      }
      if (!pushWasmFrame(T, Callee, ArgBase)) {
        T.JitCycles += Cyc;
        return RunSignal::Trapped;
      }
      if (T.Frames.back().Kind != FrameKind::Jit) {
        T.JitCycles += Cyc;
        Cyc = 0;
        return RunSignal::SwitchTier;
      }
      restore();
      break;
    }

    case MOp::Ret: {
      Cyc += 2;
      uint32_t RetBase = Vfp; // Results were written at the callee's Vfp.
      uint32_t NRes = uint32_t(Func->Type->Results.size());
      T.Frames.pop_back();
      if (T.Frames.size() < EntryDepth) {
        T.JitCycles += Cyc;
        return RunSignal::Done;
      }
      if (T.Frames.back().Kind != FrameKind::Jit) {
        // Returning into an interpreter frame: the interpreter resumes
        // from its frame's Sp, so set it to the post-call height exactly
        // as the interpreter's own End/Return paths do for their callers.
        // (A JIT caller keeps height in its abstract state and ignores
        // Sp here.) Without this, an interpreter caller resumed at its
        // written-back Sp — which excludes the results — silently
        // dropping the callee's return value on mixed-tier calls.
        T.Frames.back().Sp = RetBase + NRes;
        T.JitCycles += Cyc;
        return RunSignal::SwitchTier;
      }
      restore();
      MemData = Inst->HasMemory ? Inst->Memory.data() : nullptr;
      MemSize = Inst->HasMemory ? Inst->Memory.byteSize() : 0;
      break;
    }

    case MOp::TrapOp:
      TRAP(TrapReason(I.Imm));

    // --- Instrumentation & tiering ---
    case MOp::ProbeFire: {
      Cyc += 250; // Runtime call, probe lookup, accessor allocation (heap).
      writeback();
      F->Ip = uint32_t(I.Imm);
      if (T.Hooks)
        T.Hooks->fireProbes(T, Func, uint32_t(I.Imm));
      break;
    }
    case MOp::ProbeTosG: {
      Cyc += 30; // Direct call with the top-of-stack value; no accessor.
      writeback();
      F->Ip = uint32_t(I.Imm);
      if (T.Hooks)
        T.Hooks->fireProbeTos(T, Func, uint32_t(I.Imm),
                              Value{G[I.A], ValType(I.D)});
      break;
    }
    case MOp::ProbeTosF: {
      Cyc += 30;
      writeback();
      F->Ip = uint32_t(I.Imm);
      if (T.Hooks)
        T.Hooks->fireProbeTos(T, Func, uint32_t(I.Imm),
                              Value{FR[I.A], ValType(I.D)});
      break;
    }
    case MOp::CntInc:
      Cyc += 4;
      assert(I.Imm != 0 && "unbound CntInc patch point reached the executor");
      ++*reinterpret_cast<uint64_t *>(uintptr_t(I.Imm));
      break;
    case MOp::DeoptCheck:
      // Tier down when explicitly requested or when this frame runs stale
      // code (the function was recompiled, e.g. with probes attached).
      if (WISP_UNLIKELY(Func->DeoptRequested || F->Code != Func->Code)) {
        // Tier down: all state is spilled here by construction; rewrite
        // the frame in place to an interpreter frame (paper Fig. 2).
        F->Kind = FrameKind::Interp;
        F->Ip = uint32_t(I.Imm);
        F->Stp = uint32_t(I.Imm2);
        F->Code = nullptr;
        T.JitCycles += Cyc;
        return RunSignal::SwitchTier;
      }
      break;

    case MOp::FuelCheck:
      // Governance charge at a loop-header arrival (fallthrough, backedge
      // and OSR-skipped entry all agree with the interpreter tiers by
      // construction; see DESIGN.md). Traps at the bytecode header ip
      // carried in Imm rather than through the line table, so the trap pc
      // is identical across tiers for the same fuel budget.
      if (WISP_UNLIKELY(T.Governed)) {
        TrapReason R = T.governCheck();
        if (WISP_UNLIKELY(R != TrapReason::None)) {
          writeback();
          T.JitCycles += Cyc;
          T.setTrap(R, uint32_t(I.Imm));
          return RunSignal::Trapped;
        }
      }
      break;

    case MOp::NumOps:
      assert(false && "invalid machine opcode");
      TRAP(TrapReason::Unreachable);
    }
  }
}
