//===- machine/assembler.h - machine code assembler -------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits MInst sequences into an MCode object with forward-reference label
/// patching, mirroring the assembler layer every baseline compiler in the
/// paper is built on. Branch targets always live in the Imm field; branch
/// tables are patched entry-by-entry on bind.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_MACHINE_ASSEMBLER_H
#define WISP_MACHINE_ASSEMBLER_H

#include "machine/isa.h"

#include <cassert>

namespace wisp {

/// A code label; create with Assembler::newLabel, bind once.
struct Label {
  uint32_t Id = ~0u;
  bool valid() const { return Id != ~0u; }
};

/// Single-pass assembler with back-patching.
class Assembler {
public:
  explicit Assembler(MCode &Code) : Code(Code) {}

  uint32_t pc() const { return uint32_t(Code.Insts.size()); }

  Label newLabel() {
    LabelPc.push_back(-1);
    Pending.emplace_back();
    return Label{uint32_t(LabelPc.size() - 1)};
  }

  /// Binds \p L to the current pc and patches pending references.
  void bind(Label L) {
    assert(L.valid() && LabelPc[L.Id] < 0 && "label already bound");
    LabelPc[L.Id] = pc();
    for (const PendingRef &R : Pending[L.Id]) {
      if (R.TableIdx < 0)
        Code.Insts[R.Index].Imm = pc();
      else
        Code.BrTables[R.TableIdx][R.Index] = pc();
    }
    Pending[L.Id].clear();
  }

  bool isBound(Label L) const { return LabelPc[L.Id] >= 0; }

  /// Emits a raw instruction; returns its pc.
  uint32_t emit(MOp Op, uint8_t A = 0, uint8_t B = 0, uint8_t C = 0,
                uint8_t D = 0, int64_t Imm = 0, int64_t Imm2 = 0) {
    Code.Insts.push_back(MInst{Op, A, B, C, D, Imm, Imm2});
    return pc() - 1;
  }

  // --- Branches with label targets ---
  void jmp(Label L) { refLabel(emit(MOp::Jmp), L); }
  void jmpIf(Reg R, Label L) { refLabel(emit(MOp::JmpIf, R), L); }
  void jmpIfZ(Reg R, Label L) { refLabel(emit(MOp::JmpIfZ, R), L); }
  void brCmp32(Cond C, Reg A, Reg B, Label L) {
    refLabel(emit(MOp::BrCmp32, A, B, 0, uint8_t(C)), L);
  }
  void brCmpI32(Cond C, Reg A, int64_t RhsImm, Label L) {
    refLabel(emit(MOp::BrCmpI32, A, 0, 0, uint8_t(C), 0, RhsImm), L);
  }
  void brCmp64(Cond C, Reg A, Reg B, Label L) {
    refLabel(emit(MOp::BrCmp64, A, B, 0, uint8_t(C)), L);
  }
  void brCmpI64(Cond C, Reg A, int64_t RhsImm, Label L) {
    refLabel(emit(MOp::BrCmpI64, A, 0, 0, uint8_t(C), 0, RhsImm), L);
  }

  /// Emits a branch table dispatch on \p Idx over \p Targets (the last
  /// entry is the default).
  void brTable(Reg Idx, const std::vector<Label> &Targets) {
    int32_t TableIdx = int32_t(Code.BrTables.size());
    Code.BrTables.emplace_back(Targets.size(), 0);
    for (size_t I = 0; I < Targets.size(); ++I) {
      const Label &L = Targets[I];
      if (LabelPc[L.Id] >= 0)
        Code.BrTables[size_t(TableIdx)][I] = uint32_t(LabelPc[L.Id]);
      else
        Pending[L.Id].push_back(PendingRef{uint32_t(I), TableIdx});
    }
    emit(MOp::BrTable, Idx, 0, 0, 0, TableIdx);
  }

private:
  struct PendingRef {
    uint32_t Index;    ///< Instruction pc, or table entry index.
    int32_t TableIdx;  ///< -1 for instruction Imm patches.
  };

  void refLabel(uint32_t InstPc, Label L) {
    assert(L.valid() && "invalid label");
    if (LabelPc[L.Id] >= 0) {
      Code.Insts[InstPc].Imm = LabelPc[L.Id];
      return;
    }
    Pending[L.Id].push_back(PendingRef{InstPc, -1});
  }

  MCode &Code;
  std::vector<int64_t> LabelPc;
  std::vector<std::vector<PendingRef>> Pending;
};

} // namespace wisp

#endif // WISP_MACHINE_ASSEMBLER_H
