//===- machine/isa.h - simulated target instruction set ---------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compilation target: a compact register machine with 16 general
/// registers and 16 float registers, fixed-width instructions, immediate
/// operand forms, fused compare-and-branch, explicit value-stack slot
/// load/store/tag-store instructions, and probe/deopt pseudo-instructions.
///
/// This ISA substitutes for the paper's x86-64 code generation (see
/// DESIGN.md): every phenomenon the paper measures — spill traffic,
/// immediate-mode selection, value-tag stores, probe call overhead — is a
/// property of the dynamic instruction stream, which this target preserves
/// while remaining portable and deterministic. The executor additionally
/// charges a per-instruction cycle cost so experiments can report a
/// deterministic metric alongside wall-clock time.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_MACHINE_ISA_H
#define WISP_MACHINE_ISA_H

#include "wasm/types.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace wisp {

/// Register number within a class (general or float).
using Reg = uint8_t;
constexpr Reg NumGpRegs = 16;
constexpr Reg NumFpRegs = 16;
constexpr Reg NoReg = 0xff;

/// Integer comparison conditions (D field of compare/branch instructions).
enum class Cond : uint8_t { Eq, Ne, LtS, LtU, GtS, GtU, LeS, LeU, GeS, GeU };

/// Float comparison conditions.
enum class FCond : uint8_t { Eq, Ne, Lt, Gt, Le, Ge };

/// Returns the negation of a condition (used by branch folding and the
/// compare+branch peephole).
inline Cond negate(Cond C) {
  switch (C) {
  case Cond::Eq:
    return Cond::Ne;
  case Cond::Ne:
    return Cond::Eq;
  case Cond::LtS:
    return Cond::GeS;
  case Cond::LtU:
    return Cond::GeU;
  case Cond::GtS:
    return Cond::LeS;
  case Cond::GtU:
    return Cond::LeU;
  case Cond::LeS:
    return Cond::GtS;
  case Cond::LeU:
    return Cond::GtU;
  case Cond::GeS:
    return Cond::LtS;
  case Cond::GeU:
    return Cond::LtU;
  }
  return Cond::Eq;
}

inline bool evalCond32(Cond C, uint32_t A, uint32_t B) {
  switch (C) {
  case Cond::Eq:
    return A == B;
  case Cond::Ne:
    return A != B;
  case Cond::LtS:
    return int32_t(A) < int32_t(B);
  case Cond::LtU:
    return A < B;
  case Cond::GtS:
    return int32_t(A) > int32_t(B);
  case Cond::GtU:
    return A > B;
  case Cond::LeS:
    return int32_t(A) <= int32_t(B);
  case Cond::LeU:
    return A <= B;
  case Cond::GeS:
    return int32_t(A) >= int32_t(B);
  case Cond::GeU:
    return A >= B;
  }
  return false;
}

inline bool evalCond64(Cond C, uint64_t A, uint64_t B) {
  switch (C) {
  case Cond::Eq:
    return A == B;
  case Cond::Ne:
    return A != B;
  case Cond::LtS:
    return int64_t(A) < int64_t(B);
  case Cond::LtU:
    return A < B;
  case Cond::GtS:
    return int64_t(A) > int64_t(B);
  case Cond::GtU:
    return A > B;
  case Cond::LeS:
    return int64_t(A) <= int64_t(B);
  case Cond::LeU:
    return A <= B;
  case Cond::GeS:
    return int64_t(A) >= int64_t(B);
  case Cond::GeU:
    return A >= B;
  }
  return false;
}

template <typename T> inline bool evalCondF(FCond C, T A, T B) {
  switch (C) {
  case FCond::Eq:
    return A == B;
  case FCond::Ne:
    return A != B;
  case FCond::Lt:
    return A < B;
  case FCond::Gt:
    return A > B;
  case FCond::Le:
    return A <= B;
  case FCond::Ge:
    return A >= B;
  }
  return false;
}

/// Machine opcodes. Grouped; see executor.cpp for exact semantics.
enum class MOp : uint16_t {
  Nop = 0,
  // --- Value-stack slot traffic (Imm = slot index relative to VFP) ---
  LdSlot,   ///< G[A] = slots[vfp+Imm]
  LdSlotF,  ///< F[A] = slots[vfp+Imm]
  StSlot,   ///< slots[vfp+Imm] = G[A]
  StSlotF,  ///< slots[vfp+Imm] = F[A]
  StTag,    ///< tags[vfp+Imm] = A (a ValType byte); no-op without tag lane
  StSp,     ///< frame.Sp = vfp + Imm (stack-walker visibility)
  ZeroSlots,///< slots[vfp+Imm .. +Imm2) = 0
  // --- Moves ---
  MovRR, ///< G[A] = G[B]
  MovFF, ///< F[A] = F[B]
  MovRI, ///< G[A] = Imm
  MovFI, ///< F[A] = Imm (bit pattern)
  RintFG32, ///< G[A] = zext(F[B] low 32)   (i32.reinterpret_f32)
  RintFG64, ///< G[A] = F[B]
  RintGF32, ///< F[A] = zext(G[B] low 32)   (f32.reinterpret_i32)
  RintGF64, ///< F[A] = G[B]
  // --- i32 ALU (A=dst, B=lhs, C=rhs; *I forms: Imm=rhs) ---
  Add32, Sub32, Mul32, DivS32, DivU32, RemS32, RemU32,
  And32, Or32, Xor32, Shl32, ShrS32, ShrU32, Rotl32, Rotr32,
  AddI32, MulI32, AndI32, OrI32, XorI32, ShlI32, ShrSI32, ShrUI32,
  Clz32, Ctz32, Popcnt32, Eqz32, Ext8S32, Ext16S32,
  CmpSet32,  ///< G[A] = evalCond32(D, G[B], G[C])
  CmpSetI32, ///< G[A] = evalCond32(D, G[B], Imm)
  // --- i64 ALU ---
  Add64, Sub64, Mul64, DivS64, DivU64, RemS64, RemU64,
  And64, Or64, Xor64, Shl64, ShrS64, ShrU64, Rotl64, Rotr64,
  AddI64, MulI64, AndI64, OrI64, XorI64, ShlI64, ShrSI64, ShrUI64,
  Clz64, Ctz64, Popcnt64, Eqz64, Ext8S64, Ext16S64, Ext32S64,
  CmpSet64, CmpSetI64,
  Wrap64,   ///< G[A] = zext(u32(G[B]))
  ExtS3264, ///< G[A] = sext64(i32(G[B]))
  // --- f32 ALU (A=dst, B=lhs, C=rhs in float registers) ---
  AddF32, SubF32, MulF32, DivF32, MinF32, MaxF32, CopysignF32,
  AbsF32, NegF32, CeilF32, FloorF32, TruncF32, NearestF32, SqrtF32,
  // --- f64 ALU ---
  AddF64, SubF64, MulF64, DivF64, MinF64, MaxF64, CopysignF64,
  AbsF64, NegF64, CeilF64, FloorF64, TruncF64, NearestF64, SqrtF64,
  CmpSetF32, ///< G[A] = evalCondF(D, F[B], F[C])
  CmpSetF64,
  // --- Conversions (A=dst, B=src; register class per conversion) ---
  TruncF32I32S, TruncF32I32U, TruncF64I32S, TruncF64I32U,
  TruncF32I64S, TruncF32I64U, TruncF64I64S, TruncF64I64U,
  TruncSatF32I32S, TruncSatF32I32U, TruncSatF64I32S, TruncSatF64I32U,
  TruncSatF32I64S, TruncSatF32I64U, TruncSatF64I64S, TruncSatF64I64U,
  ConvI32SF32, ConvI32UF32, ConvI64SF32, ConvI64UF32,
  ConvI32SF64, ConvI32UF64, ConvI64SF64, ConvI64UF64,
  DemoteF64, PromoteF32,
  // --- Memory (A=dst/val, B=address reg, Imm=offset) ---
  LdM8S32, LdM8U32, LdM16S32, LdM16U32, LdM32,
  LdM8S64, LdM8U64, LdM16S64, LdM16U64, LdM32S64, LdM32U64, LdM64,
  LdMF32, LdMF64,
  StM8, StM16, StM32, StM64, StMF32, StMF64,
  MemSize, ///< G[A] = pages
  MemGrow, ///< G[A] = grow(G[B])
  MemCopy, ///< memmove(G[A], G[B], G[C]) within linear memory
  MemFill, ///< memset(G[A], G[B], G[C])
  GlobGet,  ///< G[A] = globals[Imm]
  GlobGetF, ///< F[A] = globals[Imm]
  GlobSet, GlobSetF,
  // --- Control (Imm = target pc) ---
  Jmp,
  JmpIf,  ///< if (G[A] != 0) goto Imm
  JmpIfZ, ///< if (G[A] == 0) goto Imm
  BrCmp32,  ///< if evalCond32(D, G[A], G[B]) goto Imm
  BrCmpI32, ///< if evalCond32(D, G[A], Imm2) goto Imm
  BrCmp64, BrCmpI64,
  BrTable, ///< goto BrTables[Imm][min(G[A], size-1)]
  CallDirect,   ///< call function Imm with args at vfp+Imm2
  CallIndirect, ///< A=table-index reg, Imm=type index, Imm2=arg base
  Ret,
  TrapOp, ///< trap with reason Imm
  // --- Instrumentation & tiering ---
  ProbeFire, ///< generic probe dispatch at bytecode offset Imm
  ProbeTosG, ///< optimized probe: pass G[A] (type D) at offset Imm
  ProbeTosF, ///< optimized probe: pass F[A] (type D) at offset Imm
  CntInc,    ///< ++*(uint64_t*)Imm  (intrinsified counter probe; Imm is 0
             ///< until the engine binds the artifact's patch table)
  DeoptCheck,///< if func->DeoptRequested: tier down to Ip=Imm, Stp=Imm2
  FuelCheck, ///< governance charge at loop header; traps at bytecode Imm
  NumOps
};

/// One fixed-width machine instruction.
struct MInst {
  MOp Op = MOp::Nop;
  uint8_t A = 0;
  uint8_t B = 0;
  uint8_t C = 0;
  uint8_t D = 0;
  int64_t Imm = 0;
  int64_t Imm2 = 0;
};

/// A record of which value-stack slots hold references at a call site
/// (stackmap-based GC configurations, paper §IV.C).
struct StackMapEntry {
  uint32_t Pc = 0;
  uint32_t Height = 0; ///< Live operand height (slots above locals).
  std::vector<uint32_t> RefSlots; ///< Slot indexes relative to VFP.

  size_t byteSize() const { return 8 + 4 * RefSlots.size(); }
};

/// Per-compile statistics, also used by the compile-speed experiments.
struct CompileStats {
  uint64_t TimeNs = 0;
  uint64_t InputBytes = 0;
  uint64_t CodeInsts = 0;
  uint64_t TagStores = 0;   ///< Static count of StTag instructions.
  uint64_t StackMapBytes = 0;
  uint64_t SnapshotBytes = 0; ///< Abstract-state snapshot traffic.
};

/// One line-table entry: machine instructions at or after \p Pc (up to the
/// next entry) were emitted for the bytecode instruction at \p Ip.
struct LineEntry {
  uint32_t Pc = 0;
  uint32_t Ip = 0;
};

/// What a bind-time patch point resolves. Compiled artifacts are
/// position-independent: nothing process- or instance-absolute is ever
/// baked into an instruction stream. Anything that needs such an address
/// records a patch point instead, and the engine applies the table against
/// its own registries immediately before installing the code — which is
/// what lets artifacts be content-addressed, shared across engines, and
/// persisted to disk (cache/diskcache.h).
enum class PatchKind : uint8_t {
  /// Insts[Pc] is a CntInc whose Imm must become the address of the
  /// probe-counter cell attached at bytecode offset Operand. Until bound,
  /// the Imm is 0 (the verifier enforces this, so no artifact crossing a
  /// process boundary can smuggle an absolute address through CntInc).
  CounterCell,
};

/// One bind-time patch: kind + instruction pc + kind-specific operand.
struct PatchPoint {
  PatchKind Kind = PatchKind::CounterCell;
  uint32_t Pc = 0;
  uint64_t Operand = 0;
};

/// Compiled machine code for one function.
class MCode {
public:
  std::vector<MInst> Insts;
  std::vector<std::vector<uint32_t>> BrTables;
  std::vector<StackMapEntry> StackMaps;
  /// Machine-pc -> bytecode-offset line table, sorted by Pc. Single-pass
  /// pipelines (SPC, copy-and-patch, two-pass) record one entry per
  /// translated opcode, so the executor can attribute a trap to the exact
  /// faulting bytecode — the same coordinate the interpreters report. The
  /// optimizing pipeline reorders and folds across opcodes and leaves this
  /// empty (trap bytecode offsets are unavailable on that tier).
  std::vector<LineEntry> LineTable;
  /// OSR entry points: bytecode loop-header offset -> machine pc (state is
  /// fully spilled there).
  struct OsrEntry {
    uint32_t Ip = 0;
    uint32_t Stp = 0;
    uint32_t Pc = 0;
  };
  std::vector<OsrEntry> OsrEntries;
  /// Bind-time patch table (see PatchKind): every engine-absolute operand
  /// lives here, keyed by pc, and the instruction stream stays relocatable
  /// until Engine installs the artifact. Empty for unprobed bodies — the
  /// only artifacts the compile cache (and the disk cache) ever hold.
  std::vector<PatchPoint> Patches;
  uint32_t FuncIndex = 0;
  uint32_t FrameSlots = 0;
  CompileStats Stats;

  /// Finds the OSR entry for a loop header, or nullptr.
  const OsrEntry *findOsrEntry(uint32_t Ip) const {
    for (const OsrEntry &E : OsrEntries)
      if (E.Ip == Ip)
        return &E;
    return nullptr;
  }

  /// Appends a line-table entry for the bytecode at \p Ip whose code
  /// starts at the current end of Insts (coalescing empty emissions).
  void noteLine(uint32_t Ip) {
    uint32_t Pc = uint32_t(Insts.size());
    // Keep the table sorted: an opcode that emitted nothing is shadowed by
    // its successor at the same pc. A *strictly* greater recorded Pc would
    // mean the instruction stream shrank since that entry was recorded —
    // no emitter rewinds Insts, and silently absorbing such an entry would
    // erase valid trap attribution — so it is an emitter bug, rejected in
    // debug builds rather than papered over.
    while (!LineTable.empty() && LineTable.back().Pc >= Pc) {
      assert(LineTable.back().Pc == Pc &&
             "non-monotonic line table: emitter rewound the code stream");
      LineTable.pop_back();
    }
    LineTable.push_back({Pc, Ip});
  }

  /// Maps a machine pc back to the bytecode offset of the instruction it
  /// was emitted for; \p Fallback when no line table was recorded.
  uint32_t ipForPc(uint32_t Pc, uint32_t Fallback) const {
    if (LineTable.empty())
      return Fallback;
    // Last entry with Entry.Pc <= Pc (the table is sorted by Pc).
    size_t Lo = 0, Hi = LineTable.size();
    while (Lo + 1 < Hi) {
      size_t Mid = (Lo + Hi) / 2;
      if (LineTable[Mid].Pc <= Pc)
        Lo = Mid;
      else
        Hi = Mid;
    }
    return LineTable[Lo].Pc <= Pc ? LineTable[Lo].Ip : Fallback;
  }

  /// Finds the stackmap covering \p Pc, or nullptr.
  const StackMapEntry *findStackMap(uint32_t Pc) const {
    for (const StackMapEntry &E : StackMaps)
      if (E.Pc == Pc)
        return &E;
    return nullptr;
  }

  size_t codeByteSize() const { return Insts.size() * sizeof(MInst); }

  /// Renders a human-readable listing (examples, debugging).
  std::string toString() const;
};

/// Printable mnemonic of a machine opcode.
const char *mopName(MOp Op);

} // namespace wisp

#endif // WISP_MACHINE_ISA_H
