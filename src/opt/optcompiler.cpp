//===- opt/optcompiler.cpp - IR-based optimizing compiler -------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Pipeline: bytecode -> linear IR over virtual registers (with constant
// folding and per-block CSE during construction) -> use-count DCE ->
// linear-scan register allocation with loop-extended intervals (intervals
// live across calls are spilled: every machine register is caller-saved)
// -> machine code emission with compare+branch fusion.
//
// IR conventions:
//  * one virtual register per local (multiple defs, non-SSA); stack values
//    get fresh single-def vregs, so constants propagate safely on them.
//  * control merges copy stack vregs into pre-created merge vregs at the
//    edges; locals need no merge handling at all.
//  * calls stage arguments into value-stack slots per the engine calling
//    convention; the staging base is patched after spill-slot counts are
//    known.
//
//===----------------------------------------------------------------------===//

#include "opt/optcompiler.h"

#include "machine/assembler.h"
#include "runtime/numerics.h"
#include "wasm/codereader.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

using namespace wisp;

namespace {

constexpr int NoVreg = -1;

/// One linear IR instruction. Special pseudo-ops:
///  * IsLabel: a jump target (Imm = label id).
///  * ArgStage/ResStage: StSlot whose final slot index is ArgRel relative
///    to the staging base (patched after regalloc).
struct IRInst {
  MOp Op = MOp::Nop;
  int Dst = NoVreg;
  int A = NoVreg;
  int B = NoVreg;
  uint8_t D = 0;
  int64_t Imm = 0;
  int64_t Imm2 = 0;
  bool IsLabel = false;
  bool SideEffect = false;
  bool IsCall = false;
  bool ArgRel = false; ///< Imm is relative to the call staging base.
  bool Dead = false;
};

struct VregInfo {
  ValType Ty = ValType::I32;
  bool HasConst = false;
  uint64_t Konst = 0;
  uint32_t Uses = 0;
  // Live interval (instruction indexes, post-DCE renumbering not needed:
  // positions are stable because DCE only marks).
  int Start = -1;
  int End = -1;
  // Allocation result.
  Reg R = NoReg;
  int SpillSlot = -1;
  bool CrossesCall = false;
};

class OptCompiler {
public:
  OptCompiler(const Module &M, const FuncDecl &F, MCode &Code)
      : M(M), F(F), Code(Code),
        R(M.Bytes.data(), F.BodyStart, F.BodyEnd) {
    NumLocals = F.numLocalSlots();
  }

  void run();

  /// Governance checks at loop headers (same placement as the SPC).
  bool EmitFuelChecks = false;

private:
  // --- IR building ---
  int newVreg(ValType Ty) {
    Vregs.push_back(VregInfo{Ty});
    Versions.push_back(0);
    return int(Vregs.size()) - 1;
  }
  /// Records a (re)definition of a vreg; value numbering keys include the
  /// version so stale entries never match (locals are multi-def).
  void defBump(int V) {
    if (V >= 0)
      ++Versions[uint32_t(V)];
  }
  int emit(MOp Op, int Dst, int A, int B, uint8_t D = 0, int64_t Imm = 0,
           int64_t Imm2 = 0) {
    IRInst I;
    I.Op = Op;
    I.Dst = Dst;
    I.A = A;
    I.B = B;
    I.D = D;
    I.Imm = Imm;
    I.Imm2 = Imm2;
    defBump(Dst);
    Insts.push_back(I);
    return int(Insts.size()) - 1;
  }
  int newLabel() {
    LabelCount++;
    return LabelCount - 1;
  }
  void placeLabel(int L) {
    IRInst I;
    I.IsLabel = true;
    I.Imm = L;
    Insts.push_back(I);
    // All value-numbering state is per extended block: a definition made
    // on one incoming path does not dominate the code after a label.
    CSE.clear();
    LoadCSE.clear();
    ConstCSE.clear();
  }
  int emitConst(ValType Ty, uint64_t Bits) {
    // CSE constants per block.
    uint64_t Key = Bits * 4 + uint64_t(Ty == ValType::F32 ? 1 : 0) +
                   uint64_t(Ty == ValType::F64 ? 2 : 0) +
                   (Ty == ValType::I64 ? 3 : 0) * 0;
    auto It = ConstCSE.find(Key ^ (uint64_t(Ty) << 56));
    if (It != ConstCSE.end())
      return It->second;
    int V = newVreg(Ty);
    Vregs[V].HasConst = true;
    Vregs[V].Konst = Bits;
    emit(isFloatType(Ty) ? MOp::MovFI : MOp::MovRI, V, NoVreg, NoVreg, 0,
         int64_t(Bits));
    ConstCSE[Key ^ (uint64_t(Ty) << 56)] = V;
    return V;
  }

  void push(int V) { Stack.push_back(V); }
  int pop() {
    int V = Stack.back();
    Stack.pop_back();
    return V;
  }

  /// Copies \p V into a fresh temporary and rewrites every operand-stack
  /// entry equal to it. No-op if V is not on the stack.
  void rescueStackAlias(int V) {
    size_t First = 0;
    while (First < Stack.size() && Stack[First] != V)
      ++First;
    if (First == Stack.size())
      return;
    ValType Ty = Vregs[uint32_t(V)].Ty;
    int Copy = newVreg(Ty);
    IRInst Cp;
    Cp.Op = isFloatType(Ty) ? MOp::MovFF : MOp::MovRR;
    Cp.Dst = Copy;
    Cp.A = V;
    // No SideEffect: if nothing ends up reading the rescued entry, dead
    // code elimination is free to drop the copy.
    defBump(Copy);
    Insts.push_back(Cp);
    for (size_t J = First; J < Stack.size(); ++J)
      if (Stack[J] == V)
        Stack[J] = Copy;
  }

  /// Rescues stack entries aliasing any local that is assigned somewhere
  /// in the function. Called on entry to a control construct: a local.set
  /// inside the construct would clobber entries pushed outside it, and a
  /// rescue emitted at the set site would neither dominate the entry's
  /// later uses nor execute exactly once inside a loop.
  void materializeLocalAliases() {
    // Local vregs are allocated first in run(), so ids 0..NumLocals-1 are
    // exactly the locals: one stack pass suffices.
    for (size_t I = 0; I < Stack.size(); ++I) {
      int V = Stack[I];
      if (V >= 0 && V < int(NumLocals) && LocalEverSet[V])
        rescueStackAlias(V); // Rewrites every occurrence of V.
    }
  }

  struct Ctl {
    Opcode Kind = Opcode::Block;
    bool DeadEntry = false;
    bool ElseSeen = false;
    uint32_t Base = 0;
    bool EndTargeted = false;
    int EndLabel = -1;
    int ElseLabel = -1;
    int HeadLabel = -1;
    std::vector<int> MergeVregs;  ///< Result (or loop param) vregs.
    std::vector<int> SavedStack;  ///< If: stack for the else arm.
    std::vector<ValType> Results;
    int LoopStartPos = -1;
  };

  // --- Construction-time optimizations ---
  bool foldBinop(MOp Op, uint8_t D, uint64_t Av, uint64_t Bv, uint64_t *Out);
  int cseLookupOrEmit(MOp Op, ValType Ty, int A, int B, uint8_t D,
                      int64_t Imm);

  void buildOp(Opcode Op);
  void skipDeadOp(Opcode Op);
  void buildCall(const FuncType &FT, bool Indirect, uint32_t CalleeOrType);
  void emitBranchMoves(Ctl &C, bool IsLoop);
  void buildReturn();

  // --- Passes ---
  void deadCodeElim();
  void computeIntervals();
  void allocate();
  void emitMachine();

  const Module &M;
  const FuncDecl &F;
  MCode &Code;
  CodeReader R;
  uint32_t NumLocals = 0;

  std::vector<IRInst> Insts;
  std::vector<VregInfo> Vregs;
  std::vector<uint32_t> Versions; ///< Def counters for value numbering.
  std::vector<int> Stack; ///< Operand stack of vregs.
  std::vector<int> LocalVreg;
  std::vector<uint8_t> LocalEverSet; ///< Local is assigned in the body.
  std::vector<Ctl> Ctrl;
  int LabelCount = 0;
  bool Live = true;
  uint32_t MaxHeight = 0;

  // Per-block CSE tables.
  struct CseKey {
    uint64_t K0, K1, K2;
    bool operator==(const CseKey &O) const {
      return K0 == O.K0 && K1 == O.K1 && K2 == O.K2;
    }
  };
  struct CseHash {
    size_t operator()(const CseKey &K) const {
      return size_t((K.K0 * 1099511628211ull ^ K.K1) * 1099511628211ull ^
                    K.K2);
    }
  };
  std::unordered_map<CseKey, int, CseHash> CSE;
  std::unordered_map<CseKey, int, CseHash> LoadCSE;
  std::unordered_map<uint64_t, int> ConstCSE;

  std::vector<std::pair<int, int>> LoopRanges; ///< IR position ranges.
  std::vector<int> CallPositions;
  std::vector<std::vector<int>> BrTableLabels;
  std::vector<int> ThirdOperandIsVreg; ///< MemCopy/Fill positions.
  uint32_t NumSpills = 0;
};

bool OptCompiler::foldBinop(MOp Op, uint8_t D, uint64_t Av, uint64_t Bv,
                            uint64_t *Out) {
  uint32_t A32 = uint32_t(Av), B32 = uint32_t(Bv);
  switch (Op) {
  case MOp::Add32:
    *Out = uint32_t(A32 + B32);
    return true;
  case MOp::Sub32:
    *Out = uint32_t(A32 - B32);
    return true;
  case MOp::Mul32:
    *Out = uint32_t(A32 * B32);
    return true;
  case MOp::And32:
    *Out = A32 & B32;
    return true;
  case MOp::Or32:
    *Out = A32 | B32;
    return true;
  case MOp::Xor32:
    *Out = A32 ^ B32;
    return true;
  case MOp::Shl32:
    *Out = shl32(A32, B32);
    return true;
  case MOp::ShrS32:
    *Out = uint32_t(shrS32(int32_t(A32), B32));
    return true;
  case MOp::ShrU32:
    *Out = shrU32(A32, B32);
    return true;
  case MOp::Add64:
    *Out = Av + Bv;
    return true;
  case MOp::Sub64:
    *Out = Av - Bv;
    return true;
  case MOp::Mul64:
    *Out = Av * Bv;
    return true;
  case MOp::And64:
    *Out = Av & Bv;
    return true;
  case MOp::Or64:
    *Out = Av | Bv;
    return true;
  case MOp::Xor64:
    *Out = Av ^ Bv;
    return true;
  case MOp::CmpSet32:
    *Out = evalCond32(Cond(D), A32, B32);
    return true;
  case MOp::CmpSet64:
    *Out = evalCond64(Cond(D), Av, Bv);
    return true;
  default:
    return false;
  }
}

int OptCompiler::cseLookupOrEmit(MOp Op, ValType Ty, int A, int B, uint8_t D,
                                 int64_t Imm) {
  CseKey Key{uint64_t(Op) | (uint64_t(D) << 16) | (uint64_t(uint32_t(A)) << 32),
             uint64_t(uint32_t(B)) | (uint64_t(Imm) << 32),
             (A >= 0 ? uint64_t(Versions[uint32_t(A)]) : 0) |
                 ((B >= 0 ? uint64_t(Versions[uint32_t(B)]) : 0) << 32)};
  bool IsLoad = Op >= MOp::LdM8S32 && Op <= MOp::LdMF64;
  auto &Table = IsLoad ? LoadCSE : CSE;
  auto It = Table.find(Key);
  if (It != Table.end())
    return It->second;
  int V = newVreg(Ty);
  emit(Op, V, A, B, D, Imm);
  Table[Key] = V;
  return V;
}

// Maps fixed-signature wasm opcodes to machine ops (shares the scheme of
// the baseline compilers; defined in copypatch.cpp would create a layering
// knot, so it is re-derived here).
static bool mapOp(Opcode Op, MOp *Mo, uint8_t *D);
static MOp immFormOf(MOp Mo);

void OptCompiler::buildCall(const FuncType &FT, bool Indirect,
                            uint32_t CalleeOrType) {
  int IdxV = NoVreg;
  if (Indirect)
    IdxV = pop();
  uint32_t NArgs = uint32_t(FT.Params.size());
  uint32_t HeightAfterArgs = uint32_t(Stack.size()) - NArgs;
  // Stage the arguments into the calling-convention slots.
  for (uint32_t I = 0; I < NArgs; ++I) {
    int V = Stack[HeightAfterArgs + I];
    IRInst S;
    S.Op = isFloatType(Vregs[V].Ty) ? MOp::StSlotF : MOp::StSlot;
    S.A = V;
    S.Imm = int64_t(HeightAfterArgs + I);
    S.ArgRel = true;
    S.SideEffect = true;
    Insts.push_back(S);
  }
  for (uint32_t I = 0; I < NArgs; ++I)
    (void)pop();
  IRInst C;
  C.Op = Indirect ? MOp::CallIndirect : MOp::CallDirect;
  C.A = IdxV;
  C.Imm = int64_t(CalleeOrType);
  C.Imm2 = int64_t(HeightAfterArgs); // Staging-relative; patched later.
  C.ArgRel = true;
  C.SideEffect = true;
  C.IsCall = true;
  CallPositions.push_back(int(Insts.size()));
  Insts.push_back(C);
  // Results come back in the staging slots.
  for (uint32_t I = 0; I < FT.Results.size(); ++I) {
    ValType Ty = FT.Results[I];
    int V = newVreg(Ty);
    IRInst L;
    L.Op = isFloatType(Ty) ? MOp::LdSlotF : MOp::LdSlot;
    L.Dst = V;
    L.Imm = int64_t(HeightAfterArgs + I);
    L.ArgRel = true;
    L.SideEffect = true; // Do not CSE/DCE result loads across calls.
    defBump(V);
    Insts.push_back(L);
    push(V);
  }
  CSE.clear();
  LoadCSE.clear();
  ConstCSE.clear(); // Conservative: constant vregs may be spilled anyway.
}

void OptCompiler::emitBranchMoves(Ctl &C, bool /*IsLoop*/) {
  uint32_t Arity = uint32_t(C.MergeVregs.size());
  uint32_t SrcBase = uint32_t(Stack.size()) - Arity;
  for (uint32_t J = 0; J < Arity; ++J) {
    int Src = Stack[SrcBase + J];
    int Dst = C.MergeVregs[J];
    if (Src == Dst)
      continue;
    IRInst Mv;
    Mv.Op = isFloatType(Vregs[uint32_t(Dst)].Ty) ? MOp::MovFF : MOp::MovRR;
    Mv.Dst = Dst;
    Mv.A = Src;
    Mv.SideEffect = true; // Merge moves must survive DCE.
    defBump(Dst);
    Insts.push_back(Mv);
  }
}

void OptCompiler::buildReturn() {
  const FuncType &FT = M.Types[F.TypeIdx];
  uint32_t NRes = uint32_t(FT.Results.size());
  uint32_t SrcBase = uint32_t(Stack.size()) - NRes;
  for (uint32_t J = 0; J < NRes; ++J) {
    int V = Stack[SrcBase + J];
    IRInst S;
    S.Op = isFloatType(Vregs[uint32_t(V)].Ty) ? MOp::StSlotF : MOp::StSlot;
    S.A = V;
    S.Imm = int64_t(J); // Absolute result slot.
    S.SideEffect = true;
    Insts.push_back(S);
  }
  IRInst Ret;
  Ret.Op = MOp::Ret;
  Ret.SideEffect = true;
  Insts.push_back(Ret);
}

void OptCompiler::skipDeadOp(Opcode Op) {
  switch (Op) {
  case Opcode::Block:
  case Opcode::Loop:
  case Opcode::If: {
    (void)R.readBlockType();
    Ctl C;
    C.Kind = Op;
    C.DeadEntry = true;
    Ctrl.push_back(std::move(C));
    return;
  }
  case Opcode::Else:
    if (Ctrl.back().DeadEntry)
      return;
    buildOp(Op);
    return;
  case Opcode::End:
    if (Ctrl.back().DeadEntry) {
      Ctrl.pop_back();
      return;
    }
    buildOp(Op);
    return;
  default:
    R.skipImms(Op);
    return;
  }
}

void OptCompiler::buildOp(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
    return;
  case Opcode::Unreachable: {
    IRInst T;
    T.Op = MOp::TrapOp;
    T.Imm = int64_t(TrapReason::Unreachable);
    T.SideEffect = true;
    Insts.push_back(T);
    Live = false;
    return;
  }

  case Opcode::Block:
  case Opcode::Loop: {
    BlockType BT = R.readBlockType();
    materializeLocalAliases();
    Ctl C;
    C.Kind = Op;
    std::vector<ValType> Params;
    if (BT.K == BlockType::OneResult) {
      C.Results.push_back(BT.Result);
    } else if (BT.K == BlockType::FuncTypeIdx) {
      Params = M.Types[BT.TypeIdx].Params;
      C.Results = M.Types[BT.TypeIdx].Results;
    }
    C.Base = uint32_t(Stack.size()) - uint32_t(Params.size());
    C.EndLabel = newLabel();
    if (Op == Opcode::Loop) {
      // Loop params become merge vregs assigned before the header.
      for (size_t I = 0; I < Params.size(); ++I) {
        int MV = newVreg(Params[I]);
        C.MergeVregs.push_back(MV);
      }
      // Move current params into the merge vregs, then rebind the stack.
      for (size_t I = 0; I < Params.size(); ++I) {
        int Src = Stack[C.Base + I];
        IRInst Mv;
        Mv.Op = isFloatType(Params[I]) ? MOp::MovFF : MOp::MovRR;
        Mv.Dst = C.MergeVregs[I];
        Mv.A = Src;
        Mv.SideEffect = true;
        defBump(C.MergeVregs[I]);
        Insts.push_back(Mv);
        Stack[C.Base + I] = C.MergeVregs[I];
      }
      C.HeadLabel = newLabel();
      C.LoopStartPos = int(Insts.size());
      placeLabel(C.HeadLabel);
      if (EmitFuelChecks) {
        // Loop-header fuel charge; SideEffect pins it against DCE, and
        // nothing hoists (LoopRanges only extend live intervals).
        IRInst FC;
        FC.Op = MOp::FuelCheck;
        FC.Imm = int64_t(R.pc());
        FC.SideEffect = true;
        Insts.push_back(FC);
      }
    } else {
      for (ValType T : C.Results)
        C.MergeVregs.push_back(newVreg(T));
    }
    Ctrl.push_back(std::move(C));
    return;
  }

  case Opcode::If: {
    BlockType BT = R.readBlockType();
    int CondV = pop();
    materializeLocalAliases();
    Ctl C;
    C.Kind = Opcode::If;
    std::vector<ValType> Params;
    if (BT.K == BlockType::OneResult) {
      C.Results.push_back(BT.Result);
    } else if (BT.K == BlockType::FuncTypeIdx) {
      Params = M.Types[BT.TypeIdx].Params;
      C.Results = M.Types[BT.TypeIdx].Results;
    }
    C.Base = uint32_t(Stack.size()) - uint32_t(Params.size());
    C.EndLabel = newLabel();
    C.ElseLabel = newLabel();
    for (ValType T : C.Results)
      C.MergeVregs.push_back(newVreg(T));
    C.SavedStack = Stack;
    if (Vregs[uint32_t(CondV)].HasConst) {
      // Branch folding: pick the live arm statically.
      if (Vregs[uint32_t(CondV)].Konst != 0) {
        C.ElseLabel = -2; // Then-arm live; else dead.
      } else {
        C.ElseLabel = -3; // Else-arm live; then dead.
        Live = false;
      }
      Ctrl.push_back(std::move(C));
      return;
    }
    IRInst Br;
    Br.Op = MOp::JmpIfZ;
    Br.A = CondV;
    Br.Imm = C.ElseLabel;
    Br.SideEffect = true;
    Insts.push_back(Br);
    CSE.clear();
    LoadCSE.clear();
    ConstCSE.clear();
    Ctrl.push_back(std::move(C));
    return;
  }

  case Opcode::Else: {
    Ctl &C = Ctrl.back();
    C.ElseSeen = true;
    if (Live) {
      emitBranchMoves(C, false);
      C.EndTargeted = true;
      IRInst J;
      J.Op = MOp::Jmp;
      J.Imm = C.EndLabel;
      J.SideEffect = true;
      Insts.push_back(J);
    }
    Stack = C.SavedStack;
    if (C.ElseLabel == -2) { // Then was statically chosen.
      Live = false;
      return;
    }
    Live = true;
    if (C.ElseLabel >= 0)
      placeLabel(C.ElseLabel);
    else
      CSE.clear(); // Folded-false: fresh block state anyway.
    return;
  }

  case Opcode::End: {
    Ctl C = std::move(Ctrl.back());
    Ctrl.pop_back();
    if (C.Kind == Opcode::Loop) {
      // Loops have no end merge: branches go to the header, so the body's
      // fallthrough state (or deadness) flows out unchanged.
      if (C.LoopStartPos >= 0)
        LoopRanges.push_back({C.LoopStartPos, int(Insts.size())});
      if (Ctrl.empty()) {
        if (Live)
          buildReturn();
        Live = false;
      }
      return;
    }
    if (C.Kind == Opcode::If && !C.ElseSeen) {
      if (C.ElseLabel == -2) {
        // Folded-true if without else: the then-arm's values become the
        // results.
        if (Live)
          emitBranchMoves(C, false);
      } else if (C.ElseLabel == -3) {
        // Folded-false: only the implicit else (params pass through).
        Stack = C.SavedStack;
        Live = true;
        emitBranchMoves(C, false);
      } else {
        // Real false edge: merge then-arm with the pass-through params.
        if (Live) {
          emitBranchMoves(C, false);
          C.EndTargeted = true;
          IRInst J;
          J.Op = MOp::Jmp;
          J.Imm = C.EndLabel;
          J.SideEffect = true;
          Insts.push_back(J);
        }
        placeLabel(C.ElseLabel);
        Stack = C.SavedStack;
        emitBranchMoves(C, false);
        Live = true;
      }
    } else if (Live) {
      emitBranchMoves(C, false);
    }
    bool AnyIn = Live || C.EndTargeted;
    placeLabel(C.EndLabel);
    Stack.resize(C.Base);
    for (int MV : C.MergeVregs)
      push(MV);
    if (uint32_t(Stack.size()) > MaxHeight)
      MaxHeight = uint32_t(Stack.size());
    Live = AnyIn;
    if (Ctrl.empty()) {
      if (Live)
        buildReturn();
      Live = false;
    }
    return;
  }

  case Opcode::Br: {
    uint32_t Depth = R.readU32();
    Ctl &C = Ctrl[Ctrl.size() - 1 - Depth];
    if (C.Kind == Opcode::Loop) {
      emitBranchMoves(C, true);
      IRInst J;
      J.Op = MOp::Jmp;
      J.Imm = C.HeadLabel;
      J.SideEffect = true;
      Insts.push_back(J);
    } else {
      emitBranchMoves(C, false);
      C.EndTargeted = true;
      IRInst J;
      J.Op = MOp::Jmp;
      J.Imm = C.EndLabel;
      J.SideEffect = true;
      Insts.push_back(J);
    }
    Live = false;
    return;
  }

  case Opcode::BrIf: {
    uint32_t Depth = R.readU32();
    int CondV = pop();
    Ctl &C = Ctrl[Ctrl.size() - 1 - Depth];
    if (Vregs[uint32_t(CondV)].HasConst) {
      if (Vregs[uint32_t(CondV)].Konst != 0) {
        R.setPc(R.pc()); // Fall into the unconditional case.
        // Re-use Br logic:
        if (C.Kind == Opcode::Loop) {
          emitBranchMoves(C, true);
          IRInst J;
          J.Op = MOp::Jmp;
          J.Imm = C.HeadLabel;
          J.SideEffect = true;
          Insts.push_back(J);
        } else {
          emitBranchMoves(C, false);
          C.EndTargeted = true;
          IRInst J;
          J.Op = MOp::Jmp;
          J.Imm = C.EndLabel;
          J.SideEffect = true;
          Insts.push_back(J);
        }
        Live = false;
      }
      return;
    }
    // Taken-edge merge moves behind an inverted branch when needed.
    uint32_t Arity = uint32_t(C.MergeVregs.size());
    bool NeedMoves = false;
    for (uint32_t J = 0; J < Arity; ++J)
      NeedMoves |= Stack[Stack.size() - Arity + J] != C.MergeVregs[J];
    int Target = C.Kind == Opcode::Loop ? C.HeadLabel : C.EndLabel;
    if (C.Kind != Opcode::Loop)
      C.EndTargeted = true;
    if (!NeedMoves) {
      IRInst Br;
      Br.Op = MOp::JmpIf;
      Br.A = CondV;
      Br.Imm = Target;
      Br.SideEffect = true;
      Insts.push_back(Br);
    } else {
      int Skip = newLabel();
      IRInst Br;
      Br.Op = MOp::JmpIfZ;
      Br.A = CondV;
      Br.Imm = Skip;
      Br.SideEffect = true;
      Insts.push_back(Br);
      emitBranchMoves(C, C.Kind == Opcode::Loop);
      IRInst J;
      J.Op = MOp::Jmp;
      J.Imm = Target;
      J.SideEffect = true;
      Insts.push_back(J);
      placeLabel(Skip);
    }
    CSE.clear();
    LoadCSE.clear();
    return;
  }

  case Opcode::BrTable: {
    uint32_t N = R.readU32();
    std::vector<uint32_t> Depths(N + 1);
    for (uint32_t I = 0; I <= N; ++I)
      Depths[I] = R.readU32();
    int IdxV = pop();
    // Stubs per case with merge moves.
    std::vector<int> Stubs(Depths.size());
    for (auto &L : Stubs)
      L = newLabel();
    IRInst BT;
    BT.Op = MOp::BrTable;
    BT.A = IdxV;
    BT.Imm2 = int64_t(Stubs.size());
    // Encode stub labels in a side table carried by Imm (index into
    // BrTableLabels).
    BT.Imm = int64_t(BrTableLabels.size());
    BrTableLabels.push_back(Stubs);
    BT.SideEffect = true;
    Insts.push_back(BT);
    for (size_t I = 0; I < Depths.size(); ++I) {
      placeLabel(Stubs[I]);
      Ctl &C = Ctrl[Ctrl.size() - 1 - Depths[I]];
      bool IsLoop = C.Kind == Opcode::Loop;
      if (!IsLoop)
        C.EndTargeted = true;
      emitBranchMoves(C, IsLoop);
      IRInst J;
      J.Op = MOp::Jmp;
      J.Imm = IsLoop ? C.HeadLabel : C.EndLabel;
      J.SideEffect = true;
      Insts.push_back(J);
    }
    Live = false;
    return;
  }

  case Opcode::Return:
    buildReturn();
    Live = false;
    return;

  case Opcode::Call: {
    uint32_t Idx = R.readU32();
    buildCall(M.funcType(Idx), false, Idx);
    return;
  }
  case Opcode::CallIndirect: {
    uint32_t TypeIdx = R.readU32();
    (void)R.readU32();
    buildCall(M.Types[TypeIdx], true, TypeIdx);
    return;
  }

  case Opcode::Drop:
    (void)pop();
    return;

  case Opcode::Select:
  case Opcode::SelectT: {
    if (Op == Opcode::SelectT) {
      uint32_t N = R.readU32();
      for (uint32_t I = 0; I < N; ++I)
        (void)R.readByte();
    }
    int CondV = pop();
    int Bv = pop();
    int Av = pop();
    if (Vregs[uint32_t(CondV)].HasConst) {
      push(Vregs[uint32_t(CondV)].Konst != 0 ? Av : Bv);
      return;
    }
    ValType Ty = Vregs[uint32_t(Av)].Ty;
    int Dst = newVreg(Ty);
    // dst = a; if (!cond) dst = b — expressed with an internal label.
    IRInst Mv;
    Mv.Op = isFloatType(Ty) ? MOp::MovFF : MOp::MovRR;
    Mv.Dst = Dst;
    Mv.A = Av;
    Mv.SideEffect = true;
    defBump(Dst);
    Insts.push_back(Mv);
    int Keep = newLabel();
    IRInst Br;
    Br.Op = MOp::JmpIf;
    Br.A = CondV;
    Br.Imm = Keep;
    Br.SideEffect = true;
    Insts.push_back(Br);
    IRInst Mv2;
    Mv2.Op = Mv.Op;
    Mv2.Dst = Dst;
    Mv2.A = Bv;
    Mv2.SideEffect = true;
    defBump(Dst);
    Insts.push_back(Mv2);
    placeLabel(Keep);
    push(Dst);
    return;
  }

  case Opcode::LocalGet: {
    uint32_t Idx = R.readU32();
    push(LocalVreg[Idx]);
    return;
  }
  case Opcode::LocalSet:
  case Opcode::LocalTee: {
    uint32_t Idx = R.readU32();
    int V = Stack.back();
    if (Op == Opcode::LocalSet)
      (void)pop();
    int LV = LocalVreg[Idx];
    // Stack entries pushed by an earlier local.get alias the local's vreg;
    // rescue them into a fresh copy before the assignment clobbers LV.
    if (V != LV)
      rescueStackAlias(LV);
    IRInst Mv;
    Mv.Op = isFloatType(F.LocalTypes[Idx]) ? MOp::MovFF : MOp::MovRR;
    Mv.Dst = LV;
    Mv.A = V;
    Mv.SideEffect = true; // Locals are multi-def; keep all assignments.
    defBump(LV);
    Insts.push_back(Mv);
    return;
  }

  case Opcode::GlobalGet: {
    uint32_t Idx = R.readU32();
    ValType Ty = M.Globals[Idx].Type;
    int V = newVreg(Ty);
    IRInst G;
    G.Op = isFloatType(Ty) ? MOp::GlobGetF : MOp::GlobGet;
    G.Dst = V;
    G.Imm = int64_t(Idx);
    G.SideEffect = true; // Conservative: globals are not CSE'd.
    defBump(V);
    Insts.push_back(G);
    push(V);
    return;
  }
  case Opcode::GlobalSet: {
    uint32_t Idx = R.readU32();
    int V = pop();
    IRInst G;
    G.Op = isFloatType(M.Globals[Idx].Type) ? MOp::GlobSetF : MOp::GlobSet;
    G.A = V;
    G.Imm = int64_t(Idx);
    G.SideEffect = true;
    Insts.push_back(G);
    return;
  }

  case Opcode::I32Const:
    push(emitConst(ValType::I32, uint64_t(uint32_t(R.readS32()))));
    return;
  case Opcode::I64Const:
    push(emitConst(ValType::I64, uint64_t(R.readS64())));
    return;
  case Opcode::F32Const:
    push(emitConst(ValType::F32, R.readF32Bits()));
    return;
  case Opcode::F64Const:
    push(emitConst(ValType::F64, R.readF64Bits()));
    return;

  case Opcode::MemorySize: {
    (void)R.readByte();
    int V = newVreg(ValType::I32);
    IRInst I;
    I.Op = MOp::MemSize;
    I.Dst = V;
    I.SideEffect = true;
    defBump(V);
    Insts.push_back(I);
    push(V);
    return;
  }
  case Opcode::MemoryGrow: {
    (void)R.readByte();
    int A = pop();
    int V = newVreg(ValType::I32);
    IRInst I;
    I.Op = MOp::MemGrow;
    I.Dst = V;
    I.A = A;
    I.SideEffect = true;
    defBump(V);
    Insts.push_back(I);
    LoadCSE.clear();
    push(V);
    return;
  }
  case Opcode::MemoryCopy:
  case Opcode::MemoryFill: {
    (void)R.readByte();
    if (Op == Opcode::MemoryCopy)
      (void)R.readByte();
    int L = pop(), B = pop(), A = pop();
    IRInst I;
    I.Op = Op == Opcode::MemoryCopy ? MOp::MemCopy : MOp::MemFill;
    I.Dst = NoVreg;
    I.A = A;
    I.B = B;
    I.Imm2 = L; // Third operand carried in Imm2 as a vreg id.
    I.SideEffect = true;
    Insts.push_back(I);
    ThirdOperandIsVreg.push_back(int(Insts.size()) - 1);
    LoadCSE.clear();
    return;
  }

  case Opcode::RefNull:
    (void)R.readByte();
    push(emitConst(ValType::ExternRef, 0));
    return;
  case Opcode::RefIsNull: {
    int A = pop();
    int V = cseLookupOrEmit(MOp::Eqz64, ValType::I32, A, NoVreg, 0, 0);
    push(V);
    return;
  }
  case Opcode::RefFunc: {
    uint32_t Idx = R.readU32();
    push(emitConst(ValType::FuncRef, uint64_t(Idx) + 1));
    return;
  }

  default: {
    // Fixed-signature operations.
    MOp Mo;
    uint8_t D;
    bool Ok = mapOp(Op, &Mo, &D);
    assert(Ok && "unhandled opcode in optimizing compiler");
    (void)Ok;
    const OpInfo &Info = opInfo(Op);
    int64_t Imm = 0;
    if (Info.Imm == ImmKind::MemArg) {
      MemArg Arg = R.readMemArg();
      Imm = int64_t(Arg.Offset);
    }
    int Bv = NoVreg, Av = NoVreg;
    if (Info.NPop >= 2)
      Bv = pop();
    if (Info.NPop >= 1)
      Av = pop();
    // Constant folding on single-def stack vregs.
    if (Info.NPop == 2 && Av >= 0 && Bv >= 0 && Vregs[Av].HasConst &&
        Vregs[Bv].HasConst) {
      uint64_t Out;
      if (foldBinop(Mo, D, Vregs[Av].Konst, Vregs[Bv].Konst, &Out)) {
        push(emitConst(Info.Push, Out));
        return;
      }
    }
    bool HasSideEffect = Info.CanTrap || Info.NPush == 0;
    // Instruction selection: fold a constant rhs into the immediate form
    // (the MovRI definition becomes dead and DCE removes it).
    if (!HasSideEffect && Info.NPop == 2 && Bv >= 0 &&
        Vregs[uint32_t(Bv)].HasConst) {
      MOp ImmMo = immFormOf(Mo);
      if (ImmMo != MOp::Nop) {
        int VI = cseLookupOrEmit(ImmMo, Info.Push, Av, NoVreg, D,
                                 int64_t(Vregs[uint32_t(Bv)].Konst));
        push(VI);
        return;
      }
    }
    int V;
    if (HasSideEffect) {
      V = Info.NPush ? newVreg(Info.Push) : NoVreg;
      IRInst I;
      I.Op = Mo;
      I.Dst = V;
      I.D = D;
      I.Imm = Imm;
      if (Info.NPop == 1) {
        I.A = Av;
      } else if (Info.NPop == 2) {
        I.A = Av;
        I.B = Bv;
      }
      // Stores: machine layout wants (A=value, B=address).
      if (Info.NPush == 0 && Info.Imm == ImmKind::MemArg) {
        I.A = Bv; // value
        I.B = Av; // address
        LoadCSE.clear();
      }
      I.SideEffect = true;
      defBump(V);
      Insts.push_back(I);
    } else {
      V = cseLookupOrEmit(Mo, Info.Push, Av, Bv, D, Imm);
    }
    if (Info.NPush)
      push(V);
    return;
  }
  }
}

// The opcode->machine-op mapping shared by simple operations.
static MOp immFormOf(MOp Mo) {
  switch (Mo) {
  case MOp::Add32:
    return MOp::AddI32;
  case MOp::Mul32:
    return MOp::MulI32;
  case MOp::And32:
    return MOp::AndI32;
  case MOp::Or32:
    return MOp::OrI32;
  case MOp::Xor32:
    return MOp::XorI32;
  case MOp::Shl32:
    return MOp::ShlI32;
  case MOp::ShrS32:
    return MOp::ShrSI32;
  case MOp::ShrU32:
    return MOp::ShrUI32;
  case MOp::CmpSet32:
    return MOp::CmpSetI32;
  case MOp::Add64:
    return MOp::AddI64;
  case MOp::Mul64:
    return MOp::MulI64;
  case MOp::And64:
    return MOp::AndI64;
  case MOp::Or64:
    return MOp::OrI64;
  case MOp::Xor64:
    return MOp::XorI64;
  case MOp::Shl64:
    return MOp::ShlI64;
  case MOp::ShrS64:
    return MOp::ShrSI64;
  case MOp::ShrU64:
    return MOp::ShrUI64;
  case MOp::CmpSet64:
    return MOp::CmpSetI64;
  default:
    return MOp::Nop;
  }
}

static bool mapOp(Opcode Op, MOp *Mo, uint8_t *D) {
  *D = 0;
  switch (Op) {
#define C2(OPC, MOPC, COND)                                                    \
  case Opcode::OPC:                                                            \
    *Mo = MOp::MOPC;                                                           \
    *D = uint8_t(COND);                                                        \
    return true;
#define M1(OPC, MOPC)                                                          \
  case Opcode::OPC:                                                            \
    *Mo = MOp::MOPC;                                                           \
    return true;
    M1(I32Add, Add32) M1(I32Sub, Sub32) M1(I32Mul, Mul32)
    M1(I32DivS, DivS32) M1(I32DivU, DivU32) M1(I32RemS, RemS32)
    M1(I32RemU, RemU32) M1(I32And, And32) M1(I32Or, Or32) M1(I32Xor, Xor32)
    M1(I32Shl, Shl32) M1(I32ShrS, ShrS32) M1(I32ShrU, ShrU32)
    M1(I32Rotl, Rotl32) M1(I32Rotr, Rotr32) M1(I32Clz, Clz32)
    M1(I32Ctz, Ctz32) M1(I32Popcnt, Popcnt32) M1(I32Eqz, Eqz32)
    M1(I32Extend8S, Ext8S32) M1(I32Extend16S, Ext16S32)
    M1(I64Add, Add64) M1(I64Sub, Sub64) M1(I64Mul, Mul64)
    M1(I64DivS, DivS64) M1(I64DivU, DivU64) M1(I64RemS, RemS64)
    M1(I64RemU, RemU64) M1(I64And, And64) M1(I64Or, Or64) M1(I64Xor, Xor64)
    M1(I64Shl, Shl64) M1(I64ShrS, ShrS64) M1(I64ShrU, ShrU64)
    M1(I64Rotl, Rotl64) M1(I64Rotr, Rotr64) M1(I64Clz, Clz64)
    M1(I64Ctz, Ctz64) M1(I64Popcnt, Popcnt64) M1(I64Eqz, Eqz64)
    M1(I64Extend8S, Ext8S64) M1(I64Extend16S, Ext16S64)
    M1(I64Extend32S, Ext32S64)
    C2(I32Eq, CmpSet32, Cond::Eq) C2(I32Ne, CmpSet32, Cond::Ne)
    C2(I32LtS, CmpSet32, Cond::LtS) C2(I32LtU, CmpSet32, Cond::LtU)
    C2(I32GtS, CmpSet32, Cond::GtS) C2(I32GtU, CmpSet32, Cond::GtU)
    C2(I32LeS, CmpSet32, Cond::LeS) C2(I32LeU, CmpSet32, Cond::LeU)
    C2(I32GeS, CmpSet32, Cond::GeS) C2(I32GeU, CmpSet32, Cond::GeU)
    C2(I64Eq, CmpSet64, Cond::Eq) C2(I64Ne, CmpSet64, Cond::Ne)
    C2(I64LtS, CmpSet64, Cond::LtS) C2(I64LtU, CmpSet64, Cond::LtU)
    C2(I64GtS, CmpSet64, Cond::GtS) C2(I64GtU, CmpSet64, Cond::GtU)
    C2(I64LeS, CmpSet64, Cond::LeS) C2(I64LeU, CmpSet64, Cond::LeU)
    C2(I64GeS, CmpSet64, Cond::GeS) C2(I64GeU, CmpSet64, Cond::GeU)
    C2(F32Eq, CmpSetF32, FCond::Eq) C2(F32Ne, CmpSetF32, FCond::Ne)
    C2(F32Lt, CmpSetF32, FCond::Lt) C2(F32Gt, CmpSetF32, FCond::Gt)
    C2(F32Le, CmpSetF32, FCond::Le) C2(F32Ge, CmpSetF32, FCond::Ge)
    C2(F64Eq, CmpSetF64, FCond::Eq) C2(F64Ne, CmpSetF64, FCond::Ne)
    C2(F64Lt, CmpSetF64, FCond::Lt) C2(F64Gt, CmpSetF64, FCond::Gt)
    C2(F64Le, CmpSetF64, FCond::Le) C2(F64Ge, CmpSetF64, FCond::Ge)
    M1(F32Add, AddF32) M1(F32Sub, SubF32) M1(F32Mul, MulF32)
    M1(F32Div, DivF32) M1(F32Min, MinF32) M1(F32Max, MaxF32)
    M1(F32Copysign, CopysignF32) M1(F32Abs, AbsF32) M1(F32Neg, NegF32)
    M1(F32Ceil, CeilF32) M1(F32Floor, FloorF32) M1(F32Trunc, TruncF32)
    M1(F32Nearest, NearestF32) M1(F32Sqrt, SqrtF32)
    M1(F64Add, AddF64) M1(F64Sub, SubF64) M1(F64Mul, MulF64)
    M1(F64Div, DivF64) M1(F64Min, MinF64) M1(F64Max, MaxF64)
    M1(F64Copysign, CopysignF64) M1(F64Abs, AbsF64) M1(F64Neg, NegF64)
    M1(F64Ceil, CeilF64) M1(F64Floor, FloorF64) M1(F64Trunc, TruncF64)
    M1(F64Nearest, NearestF64) M1(F64Sqrt, SqrtF64)
    M1(I32WrapI64, Wrap64) M1(I64ExtendI32S, ExtS3264)
    M1(I64ExtendI32U, Wrap64)
    M1(I32TruncF32S, TruncF32I32S) M1(I32TruncF32U, TruncF32I32U)
    M1(I32TruncF64S, TruncF64I32S) M1(I32TruncF64U, TruncF64I32U)
    M1(I64TruncF32S, TruncF32I64S) M1(I64TruncF32U, TruncF32I64U)
    M1(I64TruncF64S, TruncF64I64S) M1(I64TruncF64U, TruncF64I64U)
    M1(I32TruncSatF32S, TruncSatF32I32S) M1(I32TruncSatF32U, TruncSatF32I32U)
    M1(I32TruncSatF64S, TruncSatF64I32S) M1(I32TruncSatF64U, TruncSatF64I32U)
    M1(I64TruncSatF32S, TruncSatF32I64S) M1(I64TruncSatF32U, TruncSatF32I64U)
    M1(I64TruncSatF64S, TruncSatF64I64S) M1(I64TruncSatF64U, TruncSatF64I64U)
    M1(F32ConvertI32S, ConvI32SF32) M1(F32ConvertI32U, ConvI32UF32)
    M1(F32ConvertI64S, ConvI64SF32) M1(F32ConvertI64U, ConvI64UF32)
    M1(F64ConvertI32S, ConvI32SF64) M1(F64ConvertI32U, ConvI32UF64)
    M1(F64ConvertI64S, ConvI64SF64) M1(F64ConvertI64U, ConvI64UF64)
    M1(F32DemoteF64, DemoteF64) M1(F64PromoteF32, PromoteF32)
    M1(I32ReinterpretF32, RintFG32) M1(I64ReinterpretF64, RintFG64)
    M1(F32ReinterpretI32, RintGF32) M1(F64ReinterpretI64, RintGF64)
    M1(I32Load, LdM32) M1(I64Load, LdM64) M1(F32Load, LdMF32)
    M1(F64Load, LdMF64) M1(I32Load8S, LdM8S32) M1(I32Load8U, LdM8U32)
    M1(I32Load16S, LdM16S32) M1(I32Load16U, LdM16U32)
    M1(I64Load8S, LdM8S64) M1(I64Load8U, LdM8U64)
    M1(I64Load16S, LdM16S64) M1(I64Load16U, LdM16U64)
    M1(I64Load32S, LdM32S64) M1(I64Load32U, LdM32U64)
    M1(I32Store, StM32) M1(I64Store, StM64) M1(F32Store, StMF32)
    M1(F64Store, StMF64) M1(I32Store8, StM8) M1(I32Store16, StM16)
    M1(I64Store8, StM8) M1(I64Store16, StM16) M1(I64Store32, StM32)
#undef M1
#undef C2
  default:
    return false;
  }
}

// --- Passes ---

void OptCompiler::deadCodeElim() {
  auto useOf = [&](int V) {
    if (V >= 0)
      ++Vregs[uint32_t(V)].Uses;
  };
  for (size_t P = 0; P < Insts.size(); ++P) {
    const IRInst &I = Insts[P];
    useOf(I.A);
    useOf(I.B);
    if (I.Op == MOp::MemCopy || I.Op == MOp::MemFill)
      useOf(int(I.Imm2));
  }
  // Reverse sweep with cascading.
  for (size_t P = Insts.size(); P > 0; --P) {
    IRInst &I = Insts[P - 1];
    if (I.SideEffect || I.IsLabel || I.Dst < 0)
      continue;
    if (Vregs[uint32_t(I.Dst)].Uses != 0)
      continue;
    I.Dead = true;
    auto drop = [&](int V) {
      if (V >= 0)
        --Vregs[uint32_t(V)].Uses;
    };
    drop(I.A);
    drop(I.B);
    if (I.Op == MOp::MemCopy || I.Op == MOp::MemFill)
      drop(int(I.Imm2));
  }
}

void OptCompiler::computeIntervals() {
  auto touch = [&](int V, int P) {
    if (V < 0)
      return;
    VregInfo &Info = Vregs[uint32_t(V)];
    if (Info.Start < 0 || P < Info.Start)
      Info.Start = P;
    if (P > Info.End)
      Info.End = P;
  };
  for (size_t P = 0; P < Insts.size(); ++P) {
    const IRInst &I = Insts[P];
    if (I.Dead)
      continue;
    touch(I.Dst, int(P));
    touch(I.A, int(P));
    touch(I.B, int(P));
    if (I.Op == MOp::MemCopy || I.Op == MOp::MemFill)
      touch(int(I.Imm2), int(P));
  }
  // Loop extension: anything live inside a loop stays live for the whole
  // loop (backedges). Inner loops were recorded before outer ones, so one
  // in-order pass reaches the fixpoint.
  for (const auto &[Ls, Le] : LoopRanges) {
    for (VregInfo &V : Vregs) {
      if (V.Start < 0)
        continue;
      if (V.Start <= Le && V.End >= Ls) { // Intersects the loop.
        if (V.Start > Ls)
          V.Start = Ls;
        if (V.End < Le)
          V.End = Le;
      }
    }
  }
  // Mark intervals crossing calls: all registers are caller-saved, so
  // those values must live in memory.
  for (int C : CallPositions) {
    for (VregInfo &V : Vregs) {
      if (V.Start >= 0 && V.Start < C && V.End > C)
        V.CrossesCall = true;
    }
  }
}

void OptCompiler::allocate() {
  constexpr Reg AllocatableGp = 12;
  constexpr Reg AllocatableFp = 12;
  std::vector<int> Order;
  for (size_t V = 0; V < Vregs.size(); ++V)
    if (Vregs[V].Start >= 0)
      Order.push_back(int(V));
  std::sort(Order.begin(), Order.end(), [&](int A, int B) {
    return Vregs[uint32_t(A)].Start < Vregs[uint32_t(B)].Start;
  });
  std::vector<int> Active[2]; // Per class.
  uint16_t Free[2] = {uint16_t((1u << AllocatableGp) - 1),
                      uint16_t((1u << AllocatableFp) - 1)};
  auto classOf = [&](int V) {
    return isFloatType(Vregs[uint32_t(V)].Ty) ? 1 : 0;
  };
  auto assignSpill = [&](int V) {
    Vregs[uint32_t(V)].SpillSlot = int(NumSpills++);
  };
  for (int V : Order) {
    VregInfo &Info = Vregs[uint32_t(V)];
    int Cls = classOf(V);
    // Expire old intervals.
    auto &Act = Active[Cls];
    for (size_t I = 0; I < Act.size();) {
      if (Vregs[uint32_t(Act[I])].End < Info.Start) {
        Free[Cls] |= uint16_t(1u << Vregs[uint32_t(Act[I])].R);
        Act[I] = Act.back();
        Act.pop_back();
      } else {
        ++I;
      }
    }
    if (Info.CrossesCall) {
      assignSpill(V);
      continue;
    }
    if (Free[Cls]) {
      Reg R = Reg(__builtin_ctz(Free[Cls]));
      Free[Cls] &= uint16_t(~(1u << R));
      Info.R = R;
      Act.push_back(V);
      continue;
    }
    // Spill the active interval with the furthest end if it outlives us.
    int Victim = -1;
    for (int A : Act)
      if (Victim < 0 || Vregs[uint32_t(A)].End > Vregs[uint32_t(Victim)].End)
        Victim = A;
    if (Victim >= 0 && Vregs[uint32_t(Victim)].End > Info.End) {
      Info.R = Vregs[uint32_t(Victim)].R;
      Vregs[uint32_t(Victim)].R = NoReg;
      assignSpill(Victim);
      for (auto &A : Active[Cls])
        if (A == Victim)
          A = V;
    } else {
      assignSpill(V);
    }
  }
}

void OptCompiler::emitMachine() {
  Assembler A(Code);
  std::vector<Label> Labels(static_cast<size_t>(LabelCount));
  for (auto &L : Labels)
    L = A.newLabel();
  uint32_t StageBase = NumLocals + NumSpills;
  Code.FrameSlots = StageBase + MaxHeight + 8;

  // Scratch registers (beyond the allocatable 12).
  constexpr Reg Sc1 = 13, Sc2 = 14, Sc3 = 15;
  constexpr Reg ScF1 = 13, ScF2 = 14;

  auto spillSlotOf = [&](int V) {
    return int64_t(NumLocals) + Vregs[uint32_t(V)].SpillSlot;
  };
  // Materializes an operand vreg into a register (its own or a scratch).
  auto srcReg = [&](int V, Reg ScratchG, Reg ScratchF) -> Reg {
    VregInfo &Info = Vregs[uint32_t(V)];
    if (Info.R != NoReg)
      return Info.R;
    bool Fp = isFloatType(Info.Ty);
    Reg S = Fp ? ScratchF : ScratchG;
    A.emit(Fp ? MOp::LdSlotF : MOp::LdSlot, S, 0, 0, 0, spillSlotOf(V));
    return S;
  };
  auto dstReg = [&](int V, Reg ScratchG, Reg ScratchF) -> Reg {
    VregInfo &Info = Vregs[uint32_t(V)];
    if (Info.R != NoReg)
      return Info.R;
    return isFloatType(Info.Ty) ? ScratchF : ScratchG;
  };
  auto storeDst = [&](int V, Reg R) {
    VregInfo &Info = Vregs[uint32_t(V)];
    if (Info.R != NoReg)
      return;
    bool Fp = isFloatType(Info.Ty);
    A.emit(Fp ? MOp::StSlotF : MOp::StSlot, R, 0, 0, 0, spillSlotOf(V));
  };

  for (size_t P = 0; P < Insts.size(); ++P) {
    const IRInst &I = Insts[P];
    if (I.Dead)
      continue;
    if (I.IsLabel) {
      A.bind(Labels[size_t(I.Imm)]);
      continue;
    }
    switch (I.Op) {
    case MOp::Jmp:
      A.jmp(Labels[size_t(I.Imm)]);
      break;
    case MOp::JmpIf:
    case MOp::JmpIfZ: {
      // Compare+branch fusion: the condition is a single-use CmpSet
      // immediately preceding this branch.
      bool Fused = false;
      if (P > 0) {
        const IRInst &Prev = Insts[P - 1];
        if (!Prev.Dead && Prev.Dst == I.A &&
            Vregs[uint32_t(I.A)].Uses == 1 &&
            (Prev.Op == MOp::CmpSet32 || Prev.Op == MOp::CmpSet64) &&
            Vregs[uint32_t(I.A)].R != NoReg && !Code.Insts.empty()) {
          // The CmpSet was just emitted as the previous machine inst.
          MInst &MPrev = Code.Insts.back();
          if ((MPrev.Op == MOp::CmpSet32 || MPrev.Op == MOp::CmpSet64) &&
              MPrev.A == Vregs[uint32_t(I.A)].R) {
            Cond C = Cond(MPrev.D);
            if (I.Op == MOp::JmpIfZ)
              C = negate(C);
            bool Is64 = MPrev.Op == MOp::CmpSet64;
            Reg Lhs = MPrev.B, Rhs = MPrev.C;
            MPrev.Op = MOp::Nop;
            if (Is64)
              A.brCmp64(C, Lhs, Rhs, Labels[size_t(I.Imm)]);
            else
              A.brCmp32(C, Lhs, Rhs, Labels[size_t(I.Imm)]);
            Fused = true;
          }
        }
      }
      if (!Fused) {
        Reg R = srcReg(I.A, Sc1, ScF1);
        if (I.Op == MOp::JmpIf)
          A.jmpIf(R, Labels[size_t(I.Imm)]);
        else
          A.jmpIfZ(R, Labels[size_t(I.Imm)]);
      }
      break;
    }
    case MOp::BrTable: {
      Reg R = srcReg(I.A, Sc1, ScF1);
      const std::vector<int> &Ls = BrTableLabels[size_t(I.Imm)];
      std::vector<Label> Targets;
      for (int L : Ls)
        Targets.push_back(Labels[size_t(L)]);
      A.brTable(R, Targets);
      break;
    }
    case MOp::CallDirect:
    case MOp::CallIndirect: {
      uint32_t ArgBase = StageBase + uint32_t(I.Imm2);
      A.emit(MOp::StSp, 0, 0, 0, 0, int64_t(ArgBase));
      if (I.Op == MOp::CallIndirect) {
        Reg R = srcReg(I.A, Sc2, ScF1);
        A.emit(MOp::MovRR, Sc2, R);
        A.emit(MOp::CallIndirect, Sc2, 0, 0, 0, I.Imm, int64_t(ArgBase));
      } else {
        A.emit(MOp::CallDirect, 0, 0, 0, 0, I.Imm, int64_t(ArgBase));
      }
      break;
    }
    case MOp::Ret:
      A.emit(MOp::Ret);
      break;
    case MOp::TrapOp:
      A.emit(MOp::TrapOp, 0, 0, 0, 0, I.Imm);
      break;
    case MOp::FuelCheck:
      A.emit(MOp::FuelCheck, 0, 0, 0, 0, I.Imm);
      break;
    case MOp::StSlot:
    case MOp::StSlotF: {
      Reg R = srcReg(I.A, Sc1, ScF1);
      int64_t Slot = I.ArgRel ? int64_t(StageBase) + I.Imm : I.Imm;
      A.emit(I.Op, R, 0, 0, 0, Slot);
      break;
    }
    case MOp::LdSlot:
    case MOp::LdSlotF: {
      Reg Rd = dstReg(I.Dst, Sc1, ScF1);
      int64_t Slot = I.ArgRel ? int64_t(StageBase) + I.Imm : I.Imm;
      A.emit(I.Op, Rd, 0, 0, 0, Slot);
      storeDst(I.Dst, Rd);
      break;
    }
    case MOp::MemCopy:
    case MOp::MemFill: {
      Reg Ra = srcReg(I.A, Sc1, ScF1);
      Reg Rb = srcReg(I.B, Sc2, ScF2);
      Reg Rc = srcReg(int(I.Imm2), Sc3, ScF2);
      A.emit(I.Op, Ra, Rb, Rc);
      break;
    }
    default: {
      // Uniform data instruction: dst/A/B registers plus immediates.
      Reg Ra = I.A >= 0 ? srcReg(I.A, Sc1, ScF1) : 0;
      Reg Rb = I.B >= 0 ? srcReg(I.B, Sc2, ScF2) : 0;
      if (I.Dst >= 0) {
        Reg Rd = dstReg(I.Dst, Sc3, ScF2);
        if (I.Op == MOp::MovRR || I.Op == MOp::MovFF) {
          if (Rd != Ra)
            A.emit(I.Op, Rd, Ra);
        } else if (I.Op == MOp::MovRI || I.Op == MOp::MovFI ||
                   I.Op == MOp::GlobGet || I.Op == MOp::GlobGetF ||
                   I.Op == MOp::MemSize) {
          A.emit(I.Op, Rd, 0, 0, 0, I.Imm);
        } else {
          A.emit(I.Op, Rd, Ra, Rb, I.D, I.Imm);
        }
        storeDst(I.Dst, Rd);
      } else {
        // Stores, global sets.
        if (I.Op == MOp::GlobSet || I.Op == MOp::GlobSetF)
          A.emit(I.Op, Ra, 0, 0, 0, I.Imm);
        else
          A.emit(I.Op, Ra, Rb, 0, I.D, I.Imm);
      }
      break;
    }
    }
  }
}

void OptCompiler::run() {
  const FuncType &FT = M.Types[F.TypeIdx];
  uint32_t NParams = uint32_t(FT.Params.size());
  // Pre-scan for assigned locals: local.get entries for never-assigned
  // locals can stay aliased to the local's vreg with no materialization.
  LocalEverSet.assign(NumLocals, 0);
  {
    CodeReader Scan(M.Bytes.data(), F.BodyStart, F.BodyEnd);
    while (!Scan.atEnd()) {
      Opcode Op = Scan.readOpcode();
      if (!Scan.ok())
        break;
      if (Op == Opcode::LocalSet || Op == Opcode::LocalTee) {
        uint32_t Idx = Scan.readU32();
        if (Scan.ok() && Idx < NumLocals)
          LocalEverSet[Idx] = 1;
      } else {
        Scan.skipImms(Op);
      }
    }
  }
  LocalVreg.resize(NumLocals);
  for (uint32_t I = 0; I < NumLocals; ++I) {
    LocalVreg[I] = newVreg(F.LocalTypes[I]);
    if (I < NParams) {
      IRInst L;
      L.Op = isFloatType(F.LocalTypes[I]) ? MOp::LdSlotF : MOp::LdSlot;
      L.Dst = LocalVreg[I];
      L.Imm = int64_t(I);
      defBump(LocalVreg[I]);
      Insts.push_back(L);
    } else {
      emit(isFloatType(F.LocalTypes[I]) ? MOp::MovFI : MOp::MovRI,
           LocalVreg[I], NoVreg, NoVreg, 0, 0);
    }
  }
  Ctl Root;
  Root.Kind = Opcode::Block;
  Root.Results = FT.Results;
  Root.EndLabel = newLabel();
  for (ValType T : FT.Results)
    Root.MergeVregs.push_back(newVreg(T));
  Ctrl.push_back(std::move(Root));

  while (R.pc() < F.BodyEnd) {
    Opcode Op = R.readOpcode();
    if (!Live) {
      skipDeadOp(Op);
      continue;
    }
    if (uint32_t(Stack.size()) > MaxHeight)
      MaxHeight = uint32_t(Stack.size());
    buildOp(Op);
  }
  assert(Ctrl.empty() && "unbalanced control stack in optimizing compiler");

  deadCodeElim();
  computeIntervals();
  allocate();
  emitMachine();

  Code.FuncIndex = F.Index;
  Code.Stats.CodeInsts = Code.Insts.size();
  Code.Stats.InputBytes = F.BodyEnd - F.BodyStart;
  Code.Stats.SnapshotBytes = Insts.size() * sizeof(IRInst);
}

} // namespace

std::unique_ptr<MCode> wisp::compileOptimizing(const Module &M,
                                               const FuncDecl &F,
                                               const CompilerOptions &Opts,
                                               const ProbeSiteOracle *) {
  auto Code = std::make_unique<MCode>();
  auto Start = std::chrono::steady_clock::now();
  OptCompiler C(M, F, *Code);
  C.EmitFuelChecks = Opts.EmitFuelChecks;
  C.run();
  auto End = std::chrono::steady_clock::now();
  Code->Stats.TimeNs = uint64_t(
      std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
          .count());
  return Code;
}
