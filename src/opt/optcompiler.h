//===- opt/optcompiler.h - IR-based optimizing compiler ---------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizing tier (standing in for TurboFan/Ion/Cranelift/BBQ-OMG in
/// the paper's Figure 10): builds a virtual-register linear IR from the
/// bytecode, runs constant folding, per-block common-subexpression
/// elimination and dead-code elimination, then performs whole-function
/// linear-scan register allocation and emits machine code. Compared to the
/// baselines it keeps locals in registers across control flow (no
/// spill-at-merge), which is where most of its speedup comes from — at the
/// cost of an order of magnitude more compile time.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_OPT_OPTCOMPILER_H
#define WISP_OPT_OPTCOMPILER_H

#include "spc/compiler.h"

namespace wisp {

/// Compiles one function with the optimizing pipeline. Probes are not
/// supported in this tier; tag modes other than None/StackMap degrade to
/// None (optimizing tiers in the paper's engines all use stackmaps).
std::unique_ptr<MCode> compileOptimizing(const Module &M, const FuncDecl &F,
                                         const CompilerOptions &Opts,
                                         const ProbeSiteOracle *Probes =
                                             nullptr);

} // namespace wisp

#endif // WISP_OPT_OPTCOMPILER_H
