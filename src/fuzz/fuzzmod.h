//===- fuzz/fuzzmod.h - shrinkable random-module IR -------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tree IR for randomly generated Wasm modules. The generator builds a
/// FuzzModule instead of emitting bytes directly so the shrinker can drop
/// functions, remove statements and replace expression subtrees, then
/// re-serialize and re-check the divergence. The IR also prints a readable
/// s-expression listing for reproducer reports.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_FUZZ_FUZZMOD_H
#define WISP_FUZZ_FUZZMOD_H

#include "runtime/value.h"
#include "wasm/builder.h"

#include <string>
#include <vector>

namespace wisp {

/// An expression node producing one value of type `Type`.
struct FuzzExpr {
  enum Kind : uint8_t {
    Const,        ///< Bits holds the constant bit pattern.
    LocalGet,     ///< Index = local index.
    GlobalGet,    ///< Index = global index.
    Unary,        ///< Op applied to Kids[0].
    Binary,       ///< Op applied to Kids[0], Kids[1].
    DivRem,       ///< Like Binary; Guarded or's the denominator with 1.
    Compare,      ///< Op compares Kids (of Kids[0].Type); result i32.
    Convert,      ///< Op converts Kids[0] to Type.
    Load,         ///< Kids[0] = address; Guarded masks it with Bits.
    IfElse,       ///< Kids = {cond, then, else}; typed if/else.
    Select,       ///< Kids = {a, b, cond}.
    CallDirect,   ///< Index = callee function ordinal; Kids[0] = i32 arg.
    CallIndirect, ///< Kids = {i32 arg, table index expr}; Index = callee
                  ///< ordinal whose signature is used. Guarded wraps the
                  ///< index into the table via rem_u.
    MemSize,      ///< memory.size (i32).
    MemGrow,      ///< Kids[0] = delta; Guarded masks it to 0..3 pages.
  };

  Kind K = Const;
  ValType Type = ValType::I32;
  Opcode Op = Opcode::Nop; ///< Operator for Unary/Binary/Compare/... kinds.
  uint64_t Bits = 0;       ///< Const payload, or the Load address mask.
  uint32_t Index = 0;      ///< Local/global/function-ordinal payload.
  uint32_t Offset = 0;     ///< Load offset immediate.
  bool Guarded = true;     ///< See per-kind comments above.
  std::vector<FuzzExpr> Kids;

  static FuzzExpr constant(ValType T, uint64_t Bits);
};

/// A statement node (leaves the value stack unchanged).
struct FuzzStmt {
  enum Kind : uint8_t {
    LocalSet,      ///< E[0] -> local Index (Guarded = use tee+drop).
    GlobalSet,     ///< E[0] -> global Index.
    Store,         ///< E = {addr, value}; Op is the store opcode; Guarded
                   ///< masks the address with Bits; Offset is the immediate.
    If,            ///< E[0] = cond; Bodies[0] = then, Bodies[1] = else
                   ///< (else arm present only when Bodies.size() == 2).
    Loop,          ///< Bounded loop: Index = counter local, N = trip count,
                   ///< Bodies[0] = body.
    Block,         ///< Block with early exit: E[0] = br_if condition
                   ///< evaluated first, Bodies[0] = rest of the block.
    BrTable,       ///< Three-deep block nest switched by E[0] & 3;
                   ///< Bodies[0], Bodies[1] = the two non-empty arms.
    ResultBlock,   ///< Value-carrying block assigned to local Index:
                   ///< Bodies[0] runs, then E[1] (early value) and E[0]
                   ///< (condition) feed a br_if with a result; the fall
                   ///< path drops the early value and yields E[2].
    ResultBrTable, ///< Value-carrying br_table: E[0] = value, E[1] = index;
                   ///< arms transform the value with Op/Bits; the result
                   ///< lands in local Index.
    Call,          ///< E[0] = i32 arg; call function ordinal N; result is
                   ///< stored to local Index, or dropped if Index == ~0u.
    MemGrowStmt,   ///< E[0] = delta (masked to 0..3); result dropped.
    Return,        ///< Value-carrying function return: E[0] = value (the
                   ///< function's result type). Guarded wraps it in
                   ///< (if E[1] (then value return)); unguarded emits the
                   ///< bare return, leaving any following statements as
                   ///< dead code the validator must type-check.
    FuncBr,        ///< Branch to the *function-level* label (the shape the
                   ///< PR-3 validator bug hid from the fuzzer): E[0] =
                   ///< value. Guarded: value E[1] br_if <function label>
                   ///< drop. Unguarded: value br <function label>, dead
                   ///< code follows. The emitter computes the label index
                   ///< from its block-nesting depth at the statement.
  };

  Kind K = Kind::LocalSet;
  Opcode Op = Opcode::Nop; ///< Store opcode / ResultBrTable arm operator.
  uint32_t Index = 0;      ///< Local/global index (see per-kind comments).
  uint32_t Offset = 0;     ///< Store offset immediate.
  uint32_t N = 0;          ///< Loop trip count / Call callee ordinal.
  uint64_t Bits = 0;       ///< Store address mask / arm transform operand.
  bool Guarded = true;
  std::vector<FuzzExpr> E;
  std::vector<std::vector<FuzzStmt>> Bodies;
};

/// One function: fixed signature plus a statement body and a result
/// expression. Helpers are call-free so every generated module terminates.
struct FuzzFunc {
  std::vector<ValType> Params;
  ValType Result = ValType::I32;
  /// Non-parameter locals; local index = Params.size() + ordinal.
  std::vector<ValType> ExtraLocals;
  std::vector<FuzzStmt> Body;
  FuzzExpr Ret;
};

/// A whole module: helper functions first, the exported main ("f") last.
/// One memory (1 page min, 4 max), one funcref table holding every
/// function plus NullSlots uninitialized entries, and mutable globals.
struct FuzzModule {
  std::vector<FuzzFunc> Funcs;
  /// Mutable globals: type + constant initializer bits.
  std::vector<std::pair<ValType, uint64_t>> Globals;
  uint32_t NullSlots = 2;

  const FuzzFunc &main() const { return Funcs.back(); }
  uint32_t tableSize() const {
    return uint32_t(Funcs.size()) + NullSlots;
  }

  /// Serializes through ModuleBuilder to real .wasm bytes. When
  /// \p BakedArgs is given, an extra zero-argument "repro" export is
  /// appended that calls main with those exact constants — dumped
  /// reproducers stay self-contained, so corpus replay re-runs the
  /// divergence with its original arguments instead of only the generic
  /// replay tuples. The wrapper is kept out of the funcref table so
  /// call_indirect behavior is unchanged.
  std::vector<uint8_t> toBytes(const std::vector<Value> *BakedArgs
                               = nullptr) const;
  /// Readable s-expression listing for reproducer reports.
  std::string listing() const;
  /// Total number of IR nodes (shrinker progress metric).
  size_t nodeCount() const;
};

} // namespace wisp

#endif // WISP_FUZZ_FUZZMOD_H
