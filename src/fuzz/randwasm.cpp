//===- fuzz/randwasm.cpp - random type-correct Wasm generator --------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "fuzz/randwasm.h"

#include <cstring>

namespace wisp {

bool fuzzProfileByName(const std::string &Name, FuzzProfile *Out) {
  if (Name == "default") {
    *Out = FuzzProfile();
    return true;
  }
  if (Name == "control") {
    FuzzProfile C;
    C.Name = "control";
    C.WIf = 12;
    C.WLoop = 10;
    C.WBlock = 8;
    C.WBrTable = 7;
    C.WCall = 8;
    C.WResultBlock = 9;
    C.WResultBrTable = 7;
    C.WStore = 3;
    C.WLoad = 3;
    C.WIfExpr = 8;
    C.WCallDirect = 6;
    C.WCallIndirect = 6;
    C.StmtDepth = 3;
    C.MinStmts = 3;
    C.MaxStmts = 10;
    C.NumHelpers = 3;
    *Out = C;
    return true;
  }
  if (Name == "exits") {
    // Function-level exit shapes: returns and function-label branches from
    // deep nesting, with enough structured statements around them that
    // exits fire from inside blocks/loops/ifs, plus dead code after the
    // unconditional forms.
    FuzzProfile E;
    E.Name = "exits";
    E.WReturn = 10;
    E.WFuncBr = 12;
    E.WIf = 10;
    E.WLoop = 8;
    E.WBlock = 7;
    E.WResultBlock = 6;
    E.WBrTable = 5;
    E.StmtDepth = 3;
    E.MinStmts = 3;
    E.MaxStmts = 10;
    *Out = E;
    return true;
  }
  if (Name == "memory") {
    FuzzProfile Mp;
    Mp.Name = "memory";
    Mp.WStore = 14;
    Mp.WLoad = 14;
    Mp.WMemGrow = 4;
    Mp.WMemSize = 4;
    Mp.WMemGrowExpr = 3;
    Mp.WIf = 4;
    Mp.WLoop = 7; // Loops over stores touch many addresses.
    Mp.WResultBlock = 2;
    Mp.WResultBrTable = 1;
    Mp.WildAddrOneIn = 8;
    Mp.BoundaryOneIn = 3;
    Mp.MinStmts = 4;
    Mp.MaxStmts = 12;
    *Out = Mp;
    return true;
  }
  return false;
}

ValType RandWasm::scalarType() {
  switch (R.below(4)) {
  case 0:
    return ValType::I32;
  case 1:
    return ValType::I64;
  case 2:
    return ValType::F32;
  default:
    return ValType::F64;
  }
}

uint64_t RandWasm::constBits(ValType T) {
  switch (T) {
  case ValType::I32: {
    static const int32_t Interesting[] = {0,         1,          -1,  2,
                                          7,         100,        INT32_MIN,
                                          INT32_MAX, 0x7f,       0x80};
    if (R.chance(1, 3))
      return uint32_t(Interesting[R.below(10)]);
    return uint32_t(R.next());
  }
  case ValType::I64:
    if (R.chance(1, 3))
      return uint64_t(int64_t(R.below(3)) - 1);
    return R.next();
  case ValType::F32: {
    float V = float(int64_t(R.below(2000)) - 1000) / 8.0f;
    uint32_t B;
    memcpy(&B, &V, 4);
    return B;
  }
  default: {
    double V = double(int64_t(R.below(200000)) - 100000) / 64.0;
    uint64_t B;
    memcpy(&B, &V, 8);
    return B;
  }
  }
}

int RandWasm::pickLocal(GenCtx &C, ValType T) {
  int Found = -1;
  int Seen = 0;
  for (const auto &[Idx, LT] : C.Pickable) {
    if (LT != T)
      continue;
    ++Seen;
    if (R.below(uint64_t(Seen)) == 0)
      Found = int(Idx);
  }
  return Found;
}

uint32_t RandWasm::pickOrAddLocal(GenCtx &C, ValType T) {
  int L = pickLocal(C, T);
  if (L >= 0)
    return uint32_t(L);
  uint32_t Idx = uint32_t(C.F->Params.size() + C.F->ExtraLocals.size());
  C.F->ExtraLocals.push_back(T);
  C.Pickable.push_back({Idx, T});
  return Idx;
}

int RandWasm::pickGlobal(ValType T) {
  int Found = -1;
  int Seen = 0;
  for (size_t I = 0; I < M.Globals.size(); ++I) {
    if (M.Globals[I].first != T)
      continue;
    ++Seen;
    if (R.below(uint64_t(Seen)) == 0)
      Found = int(I);
  }
  return Found;
}

int RandWasm::pickHelper(ValType Ret) {
  int Found = -1;
  int Seen = 0;
  for (size_t I = 0; I < HelperResults.size(); ++I) {
    if (HelperResults[I] != Ret)
      continue;
    ++Seen;
    if (R.below(uint64_t(Seen)) == 0)
      Found = int(I);
  }
  return Found;
}

FuzzExpr RandWasm::genBinop(GenCtx &C, ValType T, unsigned Depth) {
  FuzzExpr E;
  E.K = FuzzExpr::Binary;
  E.Type = T;
  E.Kids.push_back(genExpr(C, T, Depth - 1));
  E.Kids.push_back(genExpr(C, T, Depth - 1));
  switch (T) {
  case ValType::I32: {
    static const Opcode Ops[] = {
        Opcode::I32Add,  Opcode::I32Sub,  Opcode::I32Mul, Opcode::I32And,
        Opcode::I32Or,   Opcode::I32Xor,  Opcode::I32Shl, Opcode::I32ShrS,
        Opcode::I32ShrU, Opcode::I32Rotl, Opcode::I32Rotr};
    E.Op = Ops[R.below(11)];
    break;
  }
  case ValType::I64: {
    static const Opcode Ops[] = {
        Opcode::I64Add,  Opcode::I64Sub,  Opcode::I64Mul, Opcode::I64And,
        Opcode::I64Or,   Opcode::I64Xor,  Opcode::I64Shl, Opcode::I64ShrS,
        Opcode::I64ShrU, Opcode::I64Rotl, Opcode::I64Rotr};
    E.Op = Ops[R.below(11)];
    break;
  }
  case ValType::F32: {
    static const Opcode Ops[] = {Opcode::F32Add, Opcode::F32Sub,
                                 Opcode::F32Mul, Opcode::F32Min,
                                 Opcode::F32Max, Opcode::F32Copysign};
    E.Op = Ops[R.below(6)];
    break;
  }
  default: {
    static const Opcode Ops[] = {Opcode::F64Add, Opcode::F64Sub,
                                 Opcode::F64Mul, Opcode::F64Min,
                                 Opcode::F64Max, Opcode::F64Copysign};
    E.Op = Ops[R.below(6)];
    break;
  }
  }
  return E;
}

FuzzExpr RandWasm::genUnop(GenCtx &C, ValType T, unsigned Depth) {
  FuzzExpr E;
  E.K = FuzzExpr::Unary;
  E.Type = T;
  E.Kids.push_back(genExpr(C, T, Depth - 1));
  switch (T) {
  case ValType::I32: {
    static const Opcode Ops[] = {Opcode::I32Clz, Opcode::I32Ctz,
                                 Opcode::I32Popcnt, Opcode::I32Extend8S,
                                 Opcode::I32Extend16S};
    E.Op = Ops[R.below(5)];
    break;
  }
  case ValType::I64: {
    static const Opcode Ops[] = {Opcode::I64Clz, Opcode::I64Ctz,
                                 Opcode::I64Popcnt, Opcode::I64Extend32S};
    E.Op = Ops[R.below(4)];
    break;
  }
  case ValType::F32: {
    static const Opcode Ops[] = {Opcode::F32Abs,   Opcode::F32Neg,
                                 Opcode::F32Ceil,  Opcode::F32Floor,
                                 Opcode::F32Trunc, Opcode::F32Sqrt};
    E.Op = Ops[R.below(6)];
    break;
  }
  default: {
    static const Opcode Ops[] = {Opcode::F64Abs,   Opcode::F64Neg,
                                 Opcode::F64Ceil,  Opcode::F64Floor,
                                 Opcode::F64Trunc, Opcode::F64Sqrt};
    E.Op = Ops[R.below(6)];
    break;
  }
  }
  return E;
}

FuzzExpr RandWasm::genCompare(GenCtx &C, unsigned Depth) {
  ValType T = scalarType();
  FuzzExpr E;
  E.K = FuzzExpr::Compare;
  E.Type = ValType::I32;
  E.Kids.push_back(genExpr(C, T, Depth - 1));
  E.Kids.push_back(genExpr(C, T, Depth - 1));
  switch (T) {
  case ValType::I32: {
    static const Opcode Ops[] = {Opcode::I32Eq,  Opcode::I32Ne,
                                 Opcode::I32LtS, Opcode::I32LtU,
                                 Opcode::I32GeS, Opcode::I32GtU};
    E.Op = Ops[R.below(6)];
    break;
  }
  case ValType::I64: {
    static const Opcode Ops[] = {Opcode::I64Eq, Opcode::I64Ne,
                                 Opcode::I64LtS, Opcode::I64GeU};
    E.Op = Ops[R.below(4)];
    break;
  }
  case ValType::F32: {
    static const Opcode Ops[] = {Opcode::F32Eq, Opcode::F32Lt,
                                 Opcode::F32Ge};
    E.Op = Ops[R.below(3)];
    break;
  }
  default: {
    static const Opcode Ops[] = {Opcode::F64Eq, Opcode::F64Lt,
                                 Opcode::F64Ge};
    E.Op = Ops[R.below(3)];
    break;
  }
  }
  return E;
}

FuzzExpr RandWasm::genDiv(GenCtx &C, ValType T, unsigned Depth) {
  FuzzExpr E;
  E.K = FuzzExpr::DivRem;
  E.Type = T;
  E.Kids.push_back(genExpr(C, T, Depth - 1));
  E.Kids.push_back(genExpr(C, T, Depth - 1));
  E.Guarded = R.chance(2, 3);
  if (T == ValType::I32) {
    static const Opcode Ops[] = {Opcode::I32DivS, Opcode::I32DivU,
                                 Opcode::I32RemS, Opcode::I32RemU};
    E.Op = Ops[R.below(4)];
  } else {
    static const Opcode Ops[] = {Opcode::I64DivS, Opcode::I64DivU,
                                 Opcode::I64RemS, Opcode::I64RemU};
    E.Op = Ops[R.below(4)];
  }
  return E;
}

FuzzExpr RandWasm::genConvert(GenCtx &C, ValType T, unsigned Depth) {
  FuzzExpr E;
  E.K = FuzzExpr::Convert;
  E.Type = T;
  ValType From;
  switch (T) {
  case ValType::I32:
    switch (R.below(4)) {
    case 0:
      E.Op = Opcode::I32WrapI64;
      From = ValType::I64;
      break;
    case 1:
      E.Op = Opcode::I32TruncSatF64S;
      From = ValType::F64;
      break;
    case 2:
      E.Op = Opcode::I32TruncSatF32U;
      From = ValType::F32;
      break;
    default:
      E.Op = Opcode::I32ReinterpretF32;
      From = ValType::F32;
      break;
    }
    break;
  case ValType::I64:
    switch (R.below(3)) {
    case 0:
      E.Op = Opcode::I64ExtendI32S;
      From = ValType::I32;
      break;
    case 1:
      E.Op = Opcode::I64ExtendI32U;
      From = ValType::I32;
      break;
    default:
      E.Op = Opcode::I64TruncSatF64S;
      From = ValType::F64;
      break;
    }
    break;
  case ValType::F32:
    switch (R.below(3)) {
    case 0:
      E.Op = Opcode::F32ConvertI32S;
      From = ValType::I32;
      break;
    case 1:
      E.Op = Opcode::F32DemoteF64;
      From = ValType::F64;
      break;
    default:
      E.Op = Opcode::F32ReinterpretI32;
      From = ValType::I32;
      break;
    }
    break;
  default:
    switch (R.below(3)) {
    case 0:
      E.Op = Opcode::F64ConvertI64S;
      From = ValType::I64;
      break;
    case 1:
      E.Op = Opcode::F64PromoteF32;
      From = ValType::F32;
      break;
    default:
      E.Op = Opcode::F64ConvertI32U;
      From = ValType::I32;
      break;
    }
    break;
  }
  E.Kids.push_back(genExpr(C, From, Depth - 1));
  return E;
}

FuzzExpr RandWasm::genLoad(GenCtx &C, ValType T, unsigned Depth) {
  FuzzExpr E;
  E.K = FuzzExpr::Load;
  E.Type = T;
  switch (T) {
  case ValType::I32: {
    static const Opcode Ops[] = {Opcode::I32Load, Opcode::I32Load8S,
                                 Opcode::I32Load8U, Opcode::I32Load16S,
                                 Opcode::I32Load16U};
    E.Op = Ops[R.below(5)];
    break;
  }
  case ValType::I64: {
    static const Opcode Ops[] = {Opcode::I64Load, Opcode::I64Load8U,
                                 Opcode::I64Load16S, Opcode::I64Load32S,
                                 Opcode::I64Load32U};
    E.Op = Ops[R.below(5)];
    break;
  }
  case ValType::F32:
    E.Op = Opcode::F32Load;
    break;
  default:
    E.Op = Opcode::F64Load;
    break;
  }
  if (R.chance(1, P.BoundaryOneIn)) {
    // Boundary pattern: a constant address straddling the first page end,
    // or a masked address with an offset immediate near the page size.
    if (R.chance(1, 2)) {
      E.Kids.push_back(FuzzExpr::constant(
          ValType::I32, uint64_t(65536 - 8 + R.below(24))));
      E.Guarded = false;
      E.Offset = uint32_t(R.below(16));
    } else {
      E.Kids.push_back(genExpr(C, ValType::I32, Depth - 1));
      E.Guarded = true;
      E.Bits = addrMask();
      E.Offset = uint32_t(65536 - 8 + R.below(24));
    }
  } else {
    E.Kids.push_back(genExpr(C, ValType::I32, Depth - 1));
    E.Guarded = !R.chance(1, P.WildAddrOneIn);
    E.Bits = addrMask();
    E.Offset = uint32_t(R.below(4));
  }
  return E;
}

FuzzExpr RandWasm::genExpr(GenCtx &C, ValType T, unsigned Depth) {
  if (Depth == 0) {
    int L = pickLocal(C, T);
    if (L >= 0 && R.chance(2, 3)) {
      FuzzExpr E;
      E.K = FuzzExpr::LocalGet;
      E.Type = T;
      E.Index = uint32_t(L);
      return E;
    }
    return FuzzExpr::constant(T, constBits(T));
  }

  bool IsInt = T == ValType::I32 || T == ValType::I64;
  bool IsI32 = T == ValType::I32;
  bool Main = !C.InHelper;

  struct Choice {
    unsigned W;
    FuzzExpr::Kind K;
  };
  Choice Choices[] = {
      {P.WConst, FuzzExpr::Const},
      {P.WLocalGet, FuzzExpr::LocalGet},
      {P.WGlobalGet, FuzzExpr::GlobalGet},
      {P.WBinop, FuzzExpr::Binary},
      {P.WUnop, FuzzExpr::Unary},
      {IsI32 ? P.WCompare : 0, FuzzExpr::Compare},
      {IsInt ? P.WDiv : 0, FuzzExpr::DivRem},
      {P.WConvert, FuzzExpr::Convert},
      {P.WLoad, FuzzExpr::Load},
      {P.WIfExpr, FuzzExpr::IfElse},
      {P.WSelect, FuzzExpr::Select},
      {Main ? P.WCallDirect : 0, FuzzExpr::CallDirect},
      {Main ? P.WCallIndirect : 0, FuzzExpr::CallIndirect},
      {IsI32 ? P.WMemSize : 0, FuzzExpr::MemSize},
      {IsI32 ? P.WMemGrowExpr : 0, FuzzExpr::MemGrow},
  };
  unsigned Total = 0;
  for (const Choice &Ch : Choices)
    Total += Ch.W;
  uint64_t Roll = R.below(Total);
  FuzzExpr::Kind K = FuzzExpr::Const;
  for (const Choice &Ch : Choices) {
    if (Roll < Ch.W) {
      K = Ch.K;
      break;
    }
    Roll -= Ch.W;
  }

  switch (K) {
  case FuzzExpr::Const:
    return FuzzExpr::constant(T, constBits(T));
  case FuzzExpr::LocalGet: {
    int L = pickLocal(C, T);
    if (L < 0)
      return FuzzExpr::constant(T, constBits(T));
    FuzzExpr E;
    E.K = FuzzExpr::LocalGet;
    E.Type = T;
    E.Index = uint32_t(L);
    return E;
  }
  case FuzzExpr::GlobalGet: {
    int G = pickGlobal(T);
    if (G < 0)
      return FuzzExpr::constant(T, constBits(T));
    FuzzExpr E;
    E.K = FuzzExpr::GlobalGet;
    E.Type = T;
    E.Index = uint32_t(G);
    return E;
  }
  case FuzzExpr::Binary:
    return genBinop(C, T, Depth);
  case FuzzExpr::Unary:
    return genUnop(C, T, Depth);
  case FuzzExpr::Compare:
    return genCompare(C, Depth);
  case FuzzExpr::DivRem:
    return genDiv(C, T, Depth);
  case FuzzExpr::Convert:
    return genConvert(C, T, Depth);
  case FuzzExpr::Load:
    return genLoad(C, T, Depth);
  case FuzzExpr::IfElse: {
    FuzzExpr E;
    E.K = FuzzExpr::IfElse;
    E.Type = T;
    E.Kids.push_back(genExpr(C, ValType::I32, Depth - 1));
    E.Kids.push_back(genExpr(C, T, Depth - 1));
    E.Kids.push_back(genExpr(C, T, Depth - 1));
    return E;
  }
  case FuzzExpr::Select: {
    FuzzExpr E;
    E.K = FuzzExpr::Select;
    E.Type = T;
    E.Kids.push_back(genExpr(C, T, Depth - 1));
    E.Kids.push_back(genExpr(C, T, Depth - 1));
    E.Kids.push_back(genExpr(C, ValType::I32, Depth - 1));
    return E;
  }
  case FuzzExpr::CallDirect: {
    int H = pickHelper(T);
    if (H < 0)
      return genBinop(C, T, Depth);
    FuzzExpr E;
    E.K = FuzzExpr::CallDirect;
    E.Type = T;
    E.Index = uint32_t(H);
    E.Kids.push_back(genExpr(C, ValType::I32, Depth - 1));
    return E;
  }
  case FuzzExpr::CallIndirect: {
    int H = pickHelper(T);
    if (H < 0)
      return genBinop(C, T, Depth);
    FuzzExpr E;
    E.K = FuzzExpr::CallIndirect;
    E.Type = T;
    E.Index = uint32_t(H);
    E.Kids.push_back(genExpr(C, ValType::I32, Depth - 1));
    E.Guarded = !R.chance(1, 8);
    if (E.Guarded) {
      E.Kids.push_back(genExpr(C, ValType::I32, Depth - 1));
    } else if (R.chance(1, 2)) {
      // Aim at the uninitialized/null tail of the table, or just past it.
      E.Kids.push_back(FuzzExpr::constant(
          ValType::I32, uint64_t(M.Funcs.size() + R.below(P.NumHelpers + 3))));
    } else {
      E.Kids.push_back(genExpr(C, ValType::I32, Depth - 1));
    }
    return E;
  }
  case FuzzExpr::MemSize: {
    FuzzExpr E;
    E.K = FuzzExpr::MemSize;
    E.Type = ValType::I32;
    return E;
  }
  case FuzzExpr::MemGrow: {
    FuzzExpr E;
    E.K = FuzzExpr::MemGrow;
    E.Type = ValType::I32;
    E.Kids.push_back(genExpr(C, ValType::I32, Depth - 1));
    // Unguarded grow requests are huge and fail deterministically (-1).
    E.Guarded = !R.chance(1, 6);
    return E;
  }
  default:
    return FuzzExpr::constant(T, constBits(T));
  }
}

FuzzStmt RandWasm::genStmt(GenCtx &C, unsigned Depth) {
  bool Main = !C.InHelper;
  struct Choice {
    unsigned W;
    FuzzStmt::Kind K;
  };
  Choice Choices[] = {
      {P.WLocalSet, FuzzStmt::LocalSet},
      {P.WGlobalSet, FuzzStmt::GlobalSet},
      {P.WStore, FuzzStmt::Store},
      {P.WIf, FuzzStmt::If},
      {C.LoopDepth < 2 ? P.WLoop : 0, FuzzStmt::Loop},
      {P.WBlock, FuzzStmt::Block},
      {P.WBrTable, FuzzStmt::BrTable},
      {P.WResultBlock, FuzzStmt::ResultBlock},
      {P.WResultBrTable, FuzzStmt::ResultBrTable},
      {Main && !HelperResults.empty() ? P.WCall : 0, FuzzStmt::Call},
      {P.WMemGrow, FuzzStmt::MemGrowStmt},
      {P.WReturn, FuzzStmt::Return},
      {P.WFuncBr, FuzzStmt::FuncBr},
  };
  unsigned Total = 0;
  for (const Choice &Ch : Choices)
    Total += Ch.W;
  uint64_t Roll = R.below(Total);
  FuzzStmt::Kind K = FuzzStmt::LocalSet;
  for (const Choice &Ch : Choices) {
    if (Roll < Ch.W) {
      K = Ch.K;
      break;
    }
    Roll -= Ch.W;
  }

  unsigned Sub = Depth > 1 ? Depth - 1 : 1;
  FuzzStmt S;
  S.K = K;
  switch (K) {
  case FuzzStmt::LocalSet: {
    ValType T = scalarType();
    S.Index = pickOrAddLocal(C, T);
    S.Guarded = R.chance(1, 4); // tee + drop variant
    S.E.push_back(genExpr(C, T, P.ExprDepth));
    return S;
  }
  case FuzzStmt::GlobalSet: {
    ValType T = scalarType();
    int G = pickGlobal(T);
    if (G < 0) {
      // No global of this type; degrade to a local.set.
      S.K = FuzzStmt::LocalSet;
      S.Index = pickOrAddLocal(C, T);
      S.Guarded = false;
      S.E.push_back(genExpr(C, T, P.ExprDepth));
      return S;
    }
    S.Index = uint32_t(G);
    S.E.push_back(genExpr(C, T, P.ExprDepth));
    return S;
  }
  case FuzzStmt::Store: {
    ValType T = scalarType();
    switch (T) {
    case ValType::I32: {
      static const Opcode Ops[] = {Opcode::I32Store, Opcode::I32Store8,
                                   Opcode::I32Store16};
      S.Op = Ops[R.below(3)];
      break;
    }
    case ValType::I64: {
      static const Opcode Ops[] = {Opcode::I64Store, Opcode::I64Store8,
                                   Opcode::I64Store32};
      S.Op = Ops[R.below(3)];
      break;
    }
    case ValType::F32:
      S.Op = Opcode::F32Store;
      break;
    default:
      S.Op = Opcode::F64Store;
      break;
    }
    if (R.chance(1, P.BoundaryOneIn)) {
      if (R.chance(1, 2)) {
        S.E.push_back(FuzzExpr::constant(
            ValType::I32, uint64_t(65536 - 8 + R.below(24))));
        S.Guarded = false;
        S.Offset = uint32_t(R.below(16));
      } else {
        S.E.push_back(genExpr(C, ValType::I32, P.ExprDepth - 1));
        S.Guarded = true;
        S.Bits = addrMask();
        S.Offset = uint32_t(65536 - 8 + R.below(24));
      }
    } else {
      S.E.push_back(genExpr(C, ValType::I32, P.ExprDepth - 1));
      S.Guarded = !R.chance(1, P.WildAddrOneIn);
      S.Bits = addrMask();
      S.Offset = uint32_t(R.below(4));
    }
    S.E.push_back(genExpr(C, T, P.ExprDepth - 1));
    return S;
  }
  case FuzzStmt::If: {
    S.E.push_back(genExpr(C, ValType::I32, P.ExprDepth));
    S.Bodies.push_back(genBody(C, 1 + unsigned(R.below(2)), Sub));
    if (R.chance(1, 2))
      S.Bodies.push_back(genBody(C, 1, Sub));
    return S;
  }
  case FuzzStmt::Loop: {
    // Reserve a counter local invisible to pickable selection so no
    // generated statement can overwrite it and break termination.
    S.Index = uint32_t(C.F->Params.size() + C.F->ExtraLocals.size());
    C.F->ExtraLocals.push_back(ValType::I32);
    S.N = 1 + uint32_t(R.below(6));
    ++C.LoopDepth;
    S.Bodies.push_back(genBody(C, 1 + unsigned(R.below(2)), Sub));
    --C.LoopDepth;
    return S;
  }
  case FuzzStmt::Block: {
    S.E.push_back(genExpr(C, ValType::I32, P.ExprDepth));
    S.Bodies.push_back(genBody(C, 1 + unsigned(R.below(2)), Sub));
    return S;
  }
  case FuzzStmt::BrTable: {
    S.E.push_back(genExpr(C, ValType::I32, P.ExprDepth));
    S.Bodies.push_back(genBody(C, 1, 1));
    S.Bodies.push_back(genBody(C, 1, 1));
    return S;
  }
  case FuzzStmt::ResultBlock: {
    ValType T = scalarType();
    S.Index = pickOrAddLocal(C, T);
    S.Bodies.push_back(genBody(C, unsigned(R.below(3)), Sub));
    S.E.push_back(genExpr(C, ValType::I32, P.ExprDepth - 1)); // Condition.
    S.E.push_back(genExpr(C, T, P.ExprDepth - 1));            // Early value.
    S.E.push_back(genExpr(C, T, P.ExprDepth - 1));            // Fall value.
    return S;
  }
  case FuzzStmt::ResultBrTable: {
    ValType T = scalarType();
    S.Index = pickOrAddLocal(C, T);
    S.E.push_back(genExpr(C, T, P.ExprDepth - 1));            // Value.
    S.E.push_back(genExpr(C, ValType::I32, P.ExprDepth - 1)); // Index.
    S.Bits = R.next() & 0xFF;
    return S;
  }
  case FuzzStmt::Call: {
    uint32_t H = uint32_t(R.below(HelperResults.size()));
    S.N = H;
    S.E.push_back(genExpr(C, ValType::I32, P.ExprDepth));
    int L = pickLocal(C, HelperResults[H]);
    S.Index = L >= 0 ? uint32_t(L) : ~0u;
    return S;
  }
  case FuzzStmt::Return:
  case FuzzStmt::FuncBr: {
    // Value-carrying function exits. Mostly conditional; 1-in-4 are
    // unconditional, leaving the rest of the body as dead code the
    // validator and every tier must agree on.
    S.Guarded = !R.chance(1, 4);
    S.E.push_back(genExpr(C, C.F->Result, P.ExprDepth - 1)); // Value.
    if (S.Guarded)
      S.E.push_back(genExpr(C, ValType::I32, P.ExprDepth - 1)); // Condition.
    return S;
  }
  default: { // MemGrowStmt
    S.K = FuzzStmt::MemGrowStmt;
    S.E.push_back(genExpr(C, ValType::I32, P.ExprDepth - 1));
    return S;
  }
  }
}

std::vector<FuzzStmt> RandWasm::genBody(GenCtx &C, unsigned Count,
                                        unsigned Depth) {
  std::vector<FuzzStmt> Body;
  for (unsigned I = 0; I < Count; ++I)
    Body.push_back(genStmt(C, Depth));
  return Body;
}

FuzzModule RandWasm::build() {
  M = FuzzModule();
  HelperResults.clear();

  for (unsigned I = 0; I < P.NumGlobals; ++I) {
    ValType T = scalarType();
    M.Globals.push_back({T, constBits(T)});
  }

  // Call-free helpers: (i32) -> random scalar.
  for (unsigned I = 0; I < P.NumHelpers; ++I) {
    FuzzFunc H;
    H.Params = {ValType::I32};
    H.Result = scalarType();
    HelperResults.push_back(H.Result);
    M.Funcs.push_back(std::move(H));
    FuzzFunc &HF = M.Funcs.back();
    GenCtx C;
    C.F = &HF;
    C.InHelper = true;
    C.Pickable.push_back({0, ValType::I32});
    HF.Body = genBody(C, 1 + unsigned(R.below(2)), 1);
    HF.Ret = genExpr(C, HF.Result, P.ExprDepth);
  }

  // The exported main.
  FuzzFunc Main;
  Main.Params = {ValType::I32, ValType::I32, ValType::F64, ValType::F64};
  Main.Result = scalarType();
  M.Funcs.push_back(std::move(Main));
  FuzzFunc &MF = M.Funcs.back();
  GenCtx C;
  C.F = &MF;
  for (uint32_t I = 0; I < 4; ++I)
    C.Pickable.push_back({I, MF.Params[I]});
  // A spread of scratch locals of every scalar type.
  static const ValType Scratch[] = {ValType::I32, ValType::I64, ValType::F32,
                                    ValType::F64, ValType::I32, ValType::I64,
                                    ValType::F64};
  for (ValType T : Scratch) {
    uint32_t Idx = uint32_t(MF.Params.size() + MF.ExtraLocals.size());
    MF.ExtraLocals.push_back(T);
    C.Pickable.push_back({Idx, T});
  }
  unsigned NStmts = P.MinStmts + unsigned(R.below(P.MaxStmts - P.MinStmts + 1));
  MF.Body = genBody(C, NStmts, P.StmtDepth);
  MF.Ret = genExpr(C, MF.Result, P.ExprDepth);
  return M;
}

} // namespace wisp
