//===- fuzz/randwasm.h - random type-correct Wasm generator -----*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random, type-correct, *terminating* Wasm modules as FuzzModule
/// trees for differential testing across all execution tiers. Loops are
/// bounded by reserved counter locals; helper functions are call-free, so
/// the call graph is acyclic and every module terminates. Memory addresses
/// are masked into bounds most of the time (occasionally left wild, or
/// aimed at page boundaries, to exercise trap paths). A weighted profile
/// biases generation toward control-flow-heavy or memory-heavy shapes.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_FUZZ_RANDWASM_H
#define WISP_FUZZ_RANDWASM_H

#include "fuzz/fuzzmod.h"
#include "support/rng.h"

namespace wisp {

/// Generation weights and shape limits. The four stock profiles are
/// "default", "control" (nested blocks, branches, calls), "memory"
/// (loads/stores, grow/size, boundary offsets) and "exits"
/// (function-level br/br_if/return, including from nested blocks, with
/// dead code after unconditional exits).
struct FuzzProfile {
  const char *Name = "default";

  // Statement weights.
  unsigned WLocalSet = 12;
  unsigned WStore = 6;
  unsigned WIf = 6;
  unsigned WLoop = 5;
  unsigned WBlock = 4;
  unsigned WBrTable = 3;
  unsigned WCall = 4;
  unsigned WGlobalSet = 5;
  unsigned WResultBlock = 4;
  unsigned WResultBrTable = 3;
  unsigned WMemGrow = 1;
  /// Function-level exits (value-carrying return / br to the function
  /// label) — the coverage gap PR 3's validator bug exposed: the generator
  /// only ever branched to inner blocks, so function-label handling was
  /// differentially untested. Nonzero by default; the "exits" profile
  /// turns them up.
  unsigned WReturn = 2;
  unsigned WFuncBr = 2;

  // Expression weights.
  unsigned WConst = 10;
  unsigned WLocalGet = 10;
  unsigned WGlobalGet = 5;
  unsigned WBinop = 12;
  unsigned WUnop = 5;
  unsigned WCompare = 5;
  unsigned WDiv = 4;
  unsigned WConvert = 5;
  unsigned WLoad = 6;
  unsigned WIfExpr = 4;
  unsigned WSelect = 3;
  unsigned WCallDirect = 3;
  unsigned WCallIndirect = 3;
  unsigned WMemSize = 1;
  unsigned WMemGrowExpr = 1;

  // Module shape.
  unsigned NumHelpers = 2;
  unsigned NumGlobals = 3;
  unsigned MinStmts = 2;
  unsigned MaxStmts = 8;
  unsigned ExprDepth = 3;
  unsigned StmtDepth = 2;

  // Trap-path dials: 1-in-N chances.
  unsigned WildAddrOneIn = 16; ///< Address left unmasked.
  unsigned BoundaryOneIn = 8;  ///< Page-boundary address/offset pattern.
};

/// The stock profiles. Unknown names return false and leave \p Out alone.
bool fuzzProfileByName(const std::string &Name, FuzzProfile *Out);

/// The generator. One instance produces one module per seed.
class RandWasm {
public:
  explicit RandWasm(uint64_t Seed, FuzzProfile P = FuzzProfile())
      : R(Seed), P(P) {}

  /// Builds a module: NumHelpers call-free helpers plus one exported main
  /// "f" taking (i32, i32, f64, f64) and returning one random scalar.
  FuzzModule build();

private:
  struct GenCtx {
    FuzzFunc *F = nullptr;
    /// Locals statements may read/write: (index, type). Loop counters are
    /// deliberately absent so no statement can break loop termination.
    std::vector<std::pair<uint32_t, ValType>> Pickable;
    unsigned LoopDepth = 0;
    bool InHelper = false;
  };

  ValType scalarType();
  uint64_t constBits(ValType T);
  int pickLocal(GenCtx &C, ValType T);
  uint32_t pickOrAddLocal(GenCtx &C, ValType T);
  int pickGlobal(ValType T);
  int pickHelper(ValType Ret);
  uint32_t addrMask() { return 0xFFF8; }

  FuzzExpr genExpr(GenCtx &C, ValType T, unsigned Depth);
  FuzzExpr genBinop(GenCtx &C, ValType T, unsigned Depth);
  FuzzExpr genUnop(GenCtx &C, ValType T, unsigned Depth);
  FuzzExpr genCompare(GenCtx &C, unsigned Depth);
  FuzzExpr genDiv(GenCtx &C, ValType T, unsigned Depth);
  FuzzExpr genConvert(GenCtx &C, ValType T, unsigned Depth);
  FuzzExpr genLoad(GenCtx &C, ValType T, unsigned Depth);
  FuzzStmt genStmt(GenCtx &C, unsigned Depth);
  std::vector<FuzzStmt> genBody(GenCtx &C, unsigned Count, unsigned Depth);

  Rng R;
  FuzzProfile P;
  FuzzModule M;
  std::vector<ValType> HelperResults;
};

} // namespace wisp

#endif // WISP_FUZZ_RANDWASM_H
