//===- fuzz/fuzzmod.cpp - random-module IR emission and listing ------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "fuzz/fuzzmod.h"

#include "support/format.h"
#include "wasm/opcodes.h"

#include <cinttypes>
#include <cstring>

namespace wisp {

FuzzExpr FuzzExpr::constant(ValType T, uint64_t Bits) {
  FuzzExpr E;
  E.K = Const;
  E.Type = T;
  switch (T) {
  case ValType::I32:
  case ValType::F32:
    E.Bits = uint32_t(Bits);
    break;
  default:
    E.Bits = Bits;
    break;
  }
  return E;
}

namespace {

/// Emits one FuzzFunc body into a FuncBuilder.
class Emitter {
public:
  Emitter(const FuzzModule &M, ModuleBuilder &MB, FuncBuilder &F)
      : M(M), MB(MB), F(F) {}

  void emitConst(ValType T, uint64_t Bits) {
    switch (T) {
    case ValType::I32:
      F.i32Const(int32_t(uint32_t(Bits)));
      break;
    case ValType::I64:
      F.i64Const(int64_t(Bits));
      break;
    case ValType::F32: {
      float V;
      uint32_t B = uint32_t(Bits);
      memcpy(&V, &B, 4);
      F.f32Const(V);
      break;
    }
    default: {
      double V;
      memcpy(&V, &Bits, 8);
      F.f64Const(V);
      break;
    }
    }
  }

  void emit(const FuzzExpr &E) {
    switch (E.K) {
    case FuzzExpr::Const:
      emitConst(E.Type, E.Bits);
      return;
    case FuzzExpr::LocalGet:
      F.localGet(E.Index);
      return;
    case FuzzExpr::GlobalGet:
      F.globalGet(E.Index);
      return;
    case FuzzExpr::Unary:
    case FuzzExpr::Convert:
      emit(E.Kids[0]);
      F.op(E.Op);
      return;
    case FuzzExpr::Binary:
    case FuzzExpr::Compare:
      emit(E.Kids[0]);
      emit(E.Kids[1]);
      F.op(E.Op);
      return;
    case FuzzExpr::DivRem:
      emit(E.Kids[0]);
      emit(E.Kids[1]);
      if (E.Guarded) {
        // Or the denominator with 1 so most divisions do not trap.
        if (E.Type == ValType::I32) {
          F.i32Const(1);
          F.op(Opcode::I32Or);
        } else {
          F.i64Const(1);
          F.op(Opcode::I64Or);
        }
      }
      F.op(E.Op);
      return;
    case FuzzExpr::Load:
      emit(E.Kids[0]);
      if (E.Guarded) {
        F.i32Const(int32_t(uint32_t(E.Bits)));
        F.op(Opcode::I32And);
      }
      F.load(E.Op, E.Offset);
      return;
    case FuzzExpr::IfElse:
      emit(E.Kids[0]);
      F.ifOp(BlockType::oneResult(E.Type));
      emit(E.Kids[1]);
      F.elseOp();
      emit(E.Kids[2]);
      F.end();
      return;
    case FuzzExpr::Select:
      emit(E.Kids[0]);
      emit(E.Kids[1]);
      emit(E.Kids[2]);
      F.select();
      return;
    case FuzzExpr::CallDirect:
      emit(E.Kids[0]);
      F.call(E.Index);
      return;
    case FuzzExpr::CallIndirect:
      emit(E.Kids[0]);
      emit(E.Kids[1]);
      if (E.Guarded) {
        // Wrap the runtime index into the initialized part of the table.
        F.i32Const(int32_t(uint32_t(M.Funcs.size())));
        F.op(Opcode::I32RemU);
      }
      F.callIndirect(typeIdxOf(E.Index));
      return;
    case FuzzExpr::MemSize:
      F.memorySize();
      return;
    case FuzzExpr::MemGrow:
      emit(E.Kids[0]);
      if (E.Guarded) {
        F.i32Const(3);
        F.op(Opcode::I32And);
      }
      F.memoryGrow();
      return;
    }
  }

  void emit(const FuzzStmt &S) {
    switch (S.K) {
    case FuzzStmt::LocalSet:
      emit(S.E[0]);
      if (S.Guarded) {
        F.localTee(S.Index);
        F.drop();
      } else {
        F.localSet(S.Index);
      }
      return;
    case FuzzStmt::GlobalSet:
      emit(S.E[0]);
      F.globalSet(S.Index);
      return;
    case FuzzStmt::Store:
      emit(S.E[0]);
      if (S.Guarded) {
        F.i32Const(int32_t(uint32_t(S.Bits)));
        F.op(Opcode::I32And);
      }
      emit(S.E[1]);
      F.store(S.Op, S.Offset);
      return;
    case FuzzStmt::If:
      emit(S.E[0]);
      F.ifOp();
      emitBody(S.Bodies[0], 1);
      if (S.Bodies.size() > 1) {
        F.elseOp();
        emitBody(S.Bodies[1], 1);
      }
      F.end();
      return;
    case FuzzStmt::Loop:
      // Trip-counted loop over a reserved counter local; the generator
      // never hands the counter to any other statement, so the bound holds.
      F.i32Const(int32_t(S.N));
      F.localSet(S.Index);
      F.loop();
      emitBody(S.Bodies[0], 1);
      F.localGet(S.Index);
      F.i32Const(1);
      F.op(Opcode::I32Sub);
      F.localTee(S.Index);
      F.brIf(0);
      F.end();
      return;
    case FuzzStmt::Block:
      F.block();
      emit(S.E[0]);
      F.brIf(0);
      emitBody(S.Bodies[0], 1);
      F.end();
      return;
    case FuzzStmt::BrTable:
      F.block();
      F.block();
      F.block();
      emit(S.E[0]);
      F.i32Const(4);
      F.op(Opcode::I32RemU);
      F.brTable({0, 1}, 2);
      F.end();
      emitBody(S.Bodies[0], 2); // Inside the two remaining blocks.
      F.end();
      emitBody(S.Bodies[1], 1);
      F.end();
      return;
    case FuzzStmt::ResultBlock: {
      // (local.set I (block (result T) body.. early cond br_if drop fall))
      ValType T = S.E[1].Type;
      F.block(BlockType::oneResult(T));
      emitBody(S.Bodies[0], 1);
      emit(S.E[1]); // Early value, carried by the br_if when taken.
      emit(S.E[0]); // Condition.
      F.brIf(0);
      F.drop();
      emit(S.E[2]); // Fall-through value.
      F.end();
      F.localSet(S.Index);
      return;
    }
    case FuzzStmt::ResultBrTable: {
      // Value-carrying br_table: each arm transforms the value in a
      // distinguishable way before it lands in local I.
      ValType T = S.E[0].Type;
      F.block(BlockType::oneResult(T)); // C: default / join
      F.block(BlockType::oneResult(T)); // B
      F.block(BlockType::oneResult(T)); // A
      emit(S.E[0]);
      emit(S.E[1]);
      F.i32Const(3);
      F.op(Opcode::I32And);
      F.brTable({0, 1}, 2);
      F.end(); // A arm:
      emitArmTransform(T, S.Bits, /*SecondArm=*/false);
      F.br(1);
      F.end(); // B arm:
      emitArmTransform(T, S.Bits, /*SecondArm=*/true);
      F.end(); // C
      F.localSet(S.Index);
      return;
    }
    case FuzzStmt::Call:
      emit(S.E[0]);
      F.call(S.N);
      if (S.Index == ~0u)
        F.drop();
      else
        F.localSet(S.Index);
      return;
    case FuzzStmt::MemGrowStmt:
      emit(S.E[0]);
      F.i32Const(3);
      F.op(Opcode::I32And);
      F.memoryGrow();
      F.drop();
      return;
    case FuzzStmt::Return:
      // Value-carrying function return. The guarded form is structurally
      // conditional; the unguarded form leaves everything after it dead,
      // exercising the unreachable-code paths of validator and compilers.
      if (S.Guarded) {
        emit(S.E[1]);
        F.ifOp();
        emit(S.E[0]);
        F.ret();
        F.end();
      } else {
        emit(S.E[0]);
        F.ret();
      }
      return;
    case FuzzStmt::FuncBr:
      // Branch to the function-level label: the label index is exactly the
      // number of enclosing blocks here, so from the body's top level this
      // is (br 0) targeting the implicit function block — the branch shape
      // whose side-table fix PR 3 landed and no generated module covered.
      if (S.Guarded) {
        emit(S.E[0]); // Value, carried by the branch when taken.
        emit(S.E[1]); // Condition.
        F.brIf(Depth);
        F.drop(); // Not taken: the value stays behind.
      } else {
        emit(S.E[0]);
        F.br(Depth);
      }
      return;
    }
  }

  void emitBody(const std::vector<FuzzStmt> &Body, unsigned DepthDelta = 0) {
    Depth += DepthDelta;
    for (const FuzzStmt &S : Body)
      emit(S);
    Depth -= DepthDelta;
  }

private:
  void emitArmTransform(ValType T, uint64_t Bits, bool SecondArm) {
    switch (T) {
    case ValType::I32:
      F.i32Const(int32_t(uint32_t(SecondArm ? ~Bits : Bits)));
      F.op(SecondArm ? Opcode::I32Xor : Opcode::I32Add);
      return;
    case ValType::I64:
      F.i64Const(int64_t(SecondArm ? ~Bits : Bits));
      F.op(SecondArm ? Opcode::I64Xor : Opcode::I64Add);
      return;
    case ValType::F32:
      F.op(SecondArm ? Opcode::F32Abs : Opcode::F32Neg);
      return;
    default:
      F.op(SecondArm ? Opcode::F64Abs : Opcode::F64Neg);
      return;
    }
  }

  uint32_t typeIdxOf(uint32_t Ordinal) {
    const FuzzFunc &Callee = M.Funcs[Ordinal];
    // addType de-duplicates, so this returns the index registered when the
    // function section was built.
    return MB.addType(Callee.Params, {Callee.Result});
  }

  const FuzzModule &M;
  ModuleBuilder &MB;
  FuncBuilder &F;
  /// Current block-nesting depth; a branch with this label index targets
  /// the function-level label.
  unsigned Depth = 0;
};

} // namespace

std::vector<uint8_t>
FuzzModule::toBytes(const std::vector<Value> *BakedArgs) const {
  ModuleBuilder MB;
  MB.addMemory(1, 4);
  MB.addTable(tableSize(), tableSize());
  for (const auto &[T, Bits] : Globals)
    MB.addGlobal(T, /*Mutable=*/true, ModuleBuilder::constInit(T, Bits));

  std::vector<FuncBuilder *> FBs;
  for (const FuzzFunc &FF : Funcs) {
    uint32_t TI = MB.addType(FF.Params, {FF.Result});
    FBs.push_back(&MB.addFunc(TI));
  }
  std::vector<uint32_t> Indices;
  for (uint32_t I = 0; I < uint32_t(Funcs.size()); ++I)
    Indices.push_back(I);
  MB.addElem(0, Indices);
  uint32_t MainIdx = uint32_t(Funcs.size()) - 1;
  MB.exportFunc("f", MainIdx);

  for (size_t I = 0; I < Funcs.size(); ++I) {
    const FuzzFunc &FF = Funcs[I];
    FuncBuilder &FB = *FBs[I];
    for (ValType L : FF.ExtraLocals)
      FB.addLocal(L);
    Emitter Em(*this, MB, FB);
    Em.emitBody(FF.Body);
    Em.emit(FF.Ret);
  }

  if (BakedArgs) {
    // A self-contained entry point replaying main's original arguments.
    uint32_t WrapTy = MB.addType({}, {main().Result});
    FuncBuilder &W = MB.addFunc(WrapTy);
    Emitter Em(*this, MB, W);
    for (const Value &V : *BakedArgs)
      Em.emitConst(V.Type, V.Bits);
    W.call(MainIdx);
    MB.exportFunc("repro", MainIdx + 1);
  }
  return MB.build();
}

// --- Listing -------------------------------------------------------------

namespace {

class ListingPrinter {
public:
  explicit ListingPrinter(const FuzzModule &M) : M(M) {}

  std::string run() {
    Out = "(module\n";
    for (size_t I = 0; I < M.Globals.size(); ++I)
      Out += strFormat("  (global $g%zu (mut %s) %s)\n", I,
                    valTypeName(M.Globals[I].first),
                    constText(M.Globals[I].first, M.Globals[I].second).c_str());
    Out += strFormat("  (table %u funcref)\n", M.tableSize());
    for (size_t I = 0; I < M.Funcs.size(); ++I)
      printFunc(I);
    Out += ")\n";
    return std::move(Out);
  }

private:
  void printFunc(size_t Ordinal) {
    const FuzzFunc &F = M.Funcs[Ordinal];
    bool IsMain = Ordinal + 1 == M.Funcs.size();
    Out += strFormat("  (func $%s%zu", IsMain ? "f" : "h", Ordinal);
    if (IsMain)
      Out += " (export \"f\")";
    if (!F.Params.empty()) {
      Out += " (param";
      for (ValType T : F.Params)
        Out += strFormat(" %s", valTypeName(T));
      Out += ")";
    }
    Out += strFormat(" (result %s)", valTypeName(F.Result));
    if (!F.ExtraLocals.empty()) {
      Out += " (local";
      for (ValType T : F.ExtraLocals)
        Out += strFormat(" %s", valTypeName(T));
      Out += ")";
    }
    Out += "\n";
    for (const FuzzStmt &S : F.Body)
      printStmt(S, 4);
    indent(4);
    printExpr(F.Ret);
    Out += ")\n";
  }

  void indent(int N) { Out.append(size_t(N), ' '); }

  std::string constText(ValType T, uint64_t Bits) {
    switch (T) {
    case ValType::I32:
      return strFormat("(i32.const %d)", int32_t(uint32_t(Bits)));
    case ValType::I64:
      return strFormat("(i64.const %" PRId64 ")", int64_t(Bits));
    case ValType::F32: {
      float V;
      uint32_t B = uint32_t(Bits);
      memcpy(&V, &B, 4);
      return strFormat("(f32.const %g)", double(V));
    }
    default: {
      double V;
      memcpy(&V, &Bits, 8);
      return strFormat("(f64.const %g)", V);
    }
    }
  }

  void printExpr(const FuzzExpr &E) {
    switch (E.K) {
    case FuzzExpr::Const:
      Out += constText(E.Type, E.Bits);
      return;
    case FuzzExpr::LocalGet:
      Out += strFormat("(local.get %u)", E.Index);
      return;
    case FuzzExpr::GlobalGet:
      Out += strFormat("(global.get $g%u)", E.Index);
      return;
    case FuzzExpr::Unary:
    case FuzzExpr::Convert:
    case FuzzExpr::Binary:
    case FuzzExpr::Compare:
    case FuzzExpr::DivRem:
      Out += strFormat("(%s", opInfo(E.Op).Name);
      if (E.K == FuzzExpr::DivRem && E.Guarded)
        Out += " guarded";
      for (const FuzzExpr &K : E.Kids) {
        Out += " ";
        printExpr(K);
      }
      Out += ")";
      return;
    case FuzzExpr::Load:
      Out += strFormat("(%s offset=%u%s ", opInfo(E.Op).Name, E.Offset,
                    E.Guarded ? strFormat(" mask=0x%x", uint32_t(E.Bits)).c_str()
                              : " wild");
      printExpr(E.Kids[0]);
      Out += ")";
      return;
    case FuzzExpr::IfElse:
      Out += strFormat("(if-expr %s ", valTypeName(E.Type));
      printExpr(E.Kids[0]);
      Out += " ";
      printExpr(E.Kids[1]);
      Out += " ";
      printExpr(E.Kids[2]);
      Out += ")";
      return;
    case FuzzExpr::Select:
      Out += "(select ";
      printExpr(E.Kids[0]);
      Out += " ";
      printExpr(E.Kids[1]);
      Out += " ";
      printExpr(E.Kids[2]);
      Out += ")";
      return;
    case FuzzExpr::CallDirect:
      Out += strFormat("(call $h%u ", E.Index);
      printExpr(E.Kids[0]);
      Out += ")";
      return;
    case FuzzExpr::CallIndirect:
      Out += strFormat("(call_indirect (sig $h%u)%s ", E.Index,
                    E.Guarded ? "" : " wild");
      printExpr(E.Kids[0]);
      Out += " ";
      printExpr(E.Kids[1]);
      Out += ")";
      return;
    case FuzzExpr::MemSize:
      Out += "(memory.size)";
      return;
    case FuzzExpr::MemGrow:
      Out += "(memory.grow ";
      printExpr(E.Kids[0]);
      Out += ")";
      return;
    }
  }

  void printStmt(const FuzzStmt &S, int Ind) {
    indent(Ind);
    switch (S.K) {
    case FuzzStmt::LocalSet:
      Out += strFormat("(%s %u ", S.Guarded ? "local.tee-drop" : "local.set",
                    S.Index);
      printExpr(S.E[0]);
      Out += ")\n";
      return;
    case FuzzStmt::GlobalSet:
      Out += strFormat("(global.set $g%u ", S.Index);
      printExpr(S.E[0]);
      Out += ")\n";
      return;
    case FuzzStmt::Store:
      Out += strFormat("(%s offset=%u%s ", opInfo(S.Op).Name, S.Offset,
                    S.Guarded ? strFormat(" mask=0x%x", uint32_t(S.Bits)).c_str()
                              : " wild");
      printExpr(S.E[0]);
      Out += " ";
      printExpr(S.E[1]);
      Out += ")\n";
      return;
    case FuzzStmt::If:
      Out += "(if ";
      printExpr(S.E[0]);
      Out += "\n";
      printBody(S.Bodies[0], Ind + 2);
      if (S.Bodies.size() > 1) {
        indent(Ind);
        Out += " else\n";
        printBody(S.Bodies[1], Ind + 2);
      }
      indent(Ind);
      Out += ")\n";
      return;
    case FuzzStmt::Loop:
      Out += strFormat("(loop times=%u counter=%u\n", S.N, S.Index);
      printBody(S.Bodies[0], Ind + 2);
      indent(Ind);
      Out += ")\n";
      return;
    case FuzzStmt::Block:
      Out += "(block early-exit-if ";
      printExpr(S.E[0]);
      Out += "\n";
      printBody(S.Bodies[0], Ind + 2);
      indent(Ind);
      Out += ")\n";
      return;
    case FuzzStmt::BrTable:
      Out += "(br_table ";
      printExpr(S.E[0]);
      Out += "\n";
      printBody(S.Bodies[0], Ind + 2);
      indent(Ind);
      Out += " arm2\n";
      printBody(S.Bodies[1], Ind + 2);
      indent(Ind);
      Out += ")\n";
      return;
    case FuzzStmt::ResultBlock:
      Out += strFormat("(result-block -> local %u\n", S.Index);
      printBody(S.Bodies[0], Ind + 2);
      indent(Ind + 2);
      Out += "(br_if-value cond=";
      printExpr(S.E[0]);
      Out += " early=";
      printExpr(S.E[1]);
      Out += " fall=";
      printExpr(S.E[2]);
      Out += ")\n";
      indent(Ind);
      Out += ")\n";
      return;
    case FuzzStmt::ResultBrTable:
      Out += strFormat("(result-br_table -> local %u value=", S.Index);
      printExpr(S.E[0]);
      Out += " index=";
      printExpr(S.E[1]);
      Out += strFormat(" arm-bits=0x%llx)\n", (unsigned long long)S.Bits);
      return;
    case FuzzStmt::Call:
      if (S.Index == ~0u)
        Out += strFormat("(call-drop $h%u ", S.N);
      else
        Out += strFormat("(call-set $h%u -> local %u ", S.N, S.Index);
      printExpr(S.E[0]);
      Out += ")\n";
      return;
    case FuzzStmt::MemGrowStmt:
      Out += "(memory.grow-drop ";
      printExpr(S.E[0]);
      Out += ")\n";
      return;
    case FuzzStmt::Return:
      if (S.Guarded) {
        Out += "(return-if cond=";
        printExpr(S.E[1]);
        Out += " value=";
      } else {
        Out += "(return value=";
      }
      printExpr(S.E[0]);
      Out += ")\n";
      return;
    case FuzzStmt::FuncBr:
      if (S.Guarded) {
        Out += "(br_if-func cond=";
        printExpr(S.E[1]);
        Out += " value=";
      } else {
        Out += "(br-func value=";
      }
      printExpr(S.E[0]);
      Out += ")\n";
      return;
    }
  }

  void printBody(const std::vector<FuzzStmt> &Body, int Ind) {
    for (const FuzzStmt &S : Body)
      printStmt(S, Ind);
  }

  const FuzzModule &M;
  std::string Out;
};

size_t exprNodes(const FuzzExpr &E) {
  size_t N = 1;
  for (const FuzzExpr &K : E.Kids)
    N += exprNodes(K);
  return N;
}

size_t stmtNodes(const FuzzStmt &S) {
  size_t N = 1;
  for (const FuzzExpr &E : S.E)
    N += exprNodes(E);
  for (const auto &Body : S.Bodies)
    for (const FuzzStmt &K : Body)
      N += stmtNodes(K);
  return N;
}

} // namespace

std::string FuzzModule::listing() const { return ListingPrinter(*this).run(); }

size_t FuzzModule::nodeCount() const {
  size_t N = 0;
  for (const FuzzFunc &F : Funcs) {
    N += 1 + exprNodes(F.Ret);
    for (const FuzzStmt &S : F.Body)
      N += stmtNodes(S);
  }
  return N;
}

} // namespace wisp
