//===- fuzz/shrink.cpp - greedy divergence shrinker ------------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "fuzz/shrink.h"

namespace wisp {

namespace {

/// Rewrites call references after helper \p H is removed: direct calls to
/// H become constants / disappear, ordinals above H shift down by one.
void dropHelperFromExpr(FuzzExpr &E, uint32_t H) {
  if ((E.K == FuzzExpr::CallDirect || E.K == FuzzExpr::CallIndirect)) {
    if (E.Index == H) {
      E = FuzzExpr::constant(E.Type, 1);
      return;
    }
    if (E.Index > H)
      --E.Index;
  }
  for (FuzzExpr &K : E.Kids)
    dropHelperFromExpr(K, H);
}

void dropHelperFromBody(std::vector<FuzzStmt> &Body, uint32_t H) {
  for (auto It = Body.begin(); It != Body.end();) {
    FuzzStmt &S = *It;
    if (S.K == FuzzStmt::Call && S.N == H) {
      It = Body.erase(It);
      continue;
    }
    if (S.K == FuzzStmt::Call && S.N > H)
      --S.N;
    for (FuzzExpr &E : S.E)
      dropHelperFromExpr(E, H);
    for (auto &Sub : S.Bodies)
      dropHelperFromBody(Sub, H);
    ++It;
  }
}

class Shrinker {
public:
  Shrinker(FuzzModule M, const FuzzOracle &Oracle, size_t Budget)
      : M(std::move(M)), Oracle(Oracle), Budget(Budget) {}

  FuzzModule run(ShrinkStats *Stats) {
    size_t NodesBefore = M.nodeCount();
    size_t BytesBefore = M.toBytes().size();
    bool Progress = true;
    while (Progress && Attempts < Budget) {
      Progress = false;
      Progress |= dropHelpers();
      for (FuzzFunc &F : M.Funcs) {
        Progress |= shrinkBody(F.Body);
        Progress |= shrinkExpr(F.Ret);
      }
    }
    if (Stats) {
      Stats->Attempts = Attempts;
      Stats->Accepted = Accepted;
      Stats->NodesBefore = NodesBefore;
      Stats->NodesAfter = M.nodeCount();
      Stats->BytesBefore = BytesBefore;
      Stats->BytesAfter = M.toBytes().size();
    }
    return std::move(M);
  }

private:
  bool test() {
    if (Attempts >= Budget)
      return false;
    ++Attempts;
    bool Ok = Oracle(M);
    if (Ok)
      ++Accepted;
    return Ok;
  }

  /// Tries to remove each helper function (everything but the exported
  /// main, which is always last).
  bool dropHelpers() {
    bool Changed = false;
    // Candidate ordinals run from the last helper down to 0; the exported
    // main is always last and never dropped.
    for (uint32_t Ordinal = uint32_t(M.Funcs.size()) - 1; Ordinal-- > 0;) {
      if (Ordinal + 1 >= M.Funcs.size())
        continue;
      FuzzModule Saved = M;
      M.Funcs.erase(M.Funcs.begin() + Ordinal);
      for (FuzzFunc &F : M.Funcs) {
        dropHelperFromBody(F.Body, Ordinal);
        dropHelperFromExpr(F.Ret, Ordinal);
      }
      if (test()) {
        Changed = true;
      } else {
        M = std::move(Saved);
      }
    }
    return Changed;
  }

  bool shrinkBody(std::vector<FuzzStmt> &Body) {
    bool Changed = false;
    for (size_t I = 0; I < Body.size();) {
      FuzzStmt Saved = Body[I];
      Body.erase(Body.begin() + I);
      if (test()) {
        Changed = true;
        continue; // Same index now names the next statement.
      }
      Body.insert(Body.begin() + I, std::move(Saved));
      // The statement is load-bearing; reduce inside it instead.
      for (auto &Sub : Body[I].Bodies)
        Changed |= shrinkBody(Sub);
      for (FuzzExpr &E : Body[I].E)
        Changed |= shrinkExpr(E);
      ++I;
    }
    return Changed;
  }

  bool shrinkExpr(FuzzExpr &E) {
    if (E.K == FuzzExpr::Const)
      return false;
    // Strongest reduction first: the whole subtree becomes a constant.
    {
      FuzzExpr Saved = E;
      E = FuzzExpr::constant(E.Type, 1);
      if (test())
        return true;
      E = std::move(Saved);
    }
    // Next: hoist a same-typed child over this node.
    for (size_t I = 0; I < E.Kids.size(); ++I) {
      if (E.Kids[I].Type != E.Type)
        continue;
      FuzzExpr Saved = E;
      FuzzExpr Kid = E.Kids[I];
      E = std::move(Kid);
      if (test())
        return true;
      E = std::move(Saved);
    }
    // The node itself is load-bearing; recurse into children.
    bool Changed = false;
    for (FuzzExpr &K : E.Kids)
      Changed |= shrinkExpr(K);
    return Changed;
  }

  FuzzModule M;
  const FuzzOracle &Oracle;
  size_t Budget;
  size_t Attempts = 0;
  size_t Accepted = 0;
};

} // namespace

FuzzModule shrinkModule(const FuzzModule &In, const FuzzOracle &Oracle,
                        ShrinkStats *Stats, size_t MaxAttempts) {
  return Shrinker(In, Oracle, MaxAttempts).run(Stats);
}

} // namespace wisp
