//===- fuzz/shrink.h - greedy divergence shrinker ---------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy fault isolation for FuzzModule reproducers: repeatedly try to
/// drop helper functions, remove statements and replace expression
/// subtrees with constants, keeping each edit only if the caller's oracle
/// still observes the divergence. Runs to a fixpoint (or an attempt
/// budget), so minimized reproducers are 1-minimal with respect to the
/// edit set.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_FUZZ_SHRINK_H
#define WISP_FUZZ_SHRINK_H

#include "fuzz/fuzzmod.h"

#include <functional>

namespace wisp {

/// Returns true while the candidate module still exhibits the divergence
/// (or whatever property is being isolated).
using FuzzOracle = std::function<bool(const FuzzModule &)>;

struct ShrinkStats {
  size_t Attempts = 0; ///< Oracle invocations.
  size_t Accepted = 0; ///< Edits that kept the divergence.
  size_t NodesBefore = 0;
  size_t NodesAfter = 0;
  size_t BytesBefore = 0;
  size_t BytesAfter = 0;
};

/// Minimizes \p In under \p Oracle. \p Oracle must return true for \p In
/// itself; the result is the smallest module found that still satisfies
/// it. \p MaxAttempts bounds total oracle invocations.
FuzzModule shrinkModule(const FuzzModule &In, const FuzzOracle &Oracle,
                        ShrinkStats *Stats = nullptr,
                        size_t MaxAttempts = 20000);

} // namespace wisp

#endif // WISP_FUZZ_SHRINK_H
