//===- fuzz/differ.cpp - six-tier differential runner ---------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "fuzz/differ.h"

#include "analysis/analysis.h"
#include "engine/engine.h"
#include "instr/monitors.h"
#include "support/format.h"
#include "support/rng.h"
#include "wasm/reader.h"
#include "wasm/validator.h"

#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <unistd.h>

namespace wisp {

const std::vector<std::string> &differTierNames() {
  static const std::vector<std::string> Names = {
      "int",     "threaded", "spc",    "copypatch",
      "twopass", "opt",      "tiered", "tiered-threaded"};
  return Names;
}

namespace {

EngineConfig tierConfig(const std::string &Tier) {
  EngineConfig Cfg;
  Cfg.Name = "fuzz-" + Tier;
  // Never pick up a WISP_CACHE_DIR from the fuzzer's environment: only
  // the "+disk" tiers re-enable this, against a private per-seed
  // directory (see runOneTier / runDiskTier).
  Cfg.UseDiskCache = false;
  if (Tier == "int") {
    Cfg.Mode = ExecMode::Interp;
    return Cfg;
  }
  if (Tier == "threaded") {
    // Threaded-dispatch interpreter: pre-decoded IR + superinstruction
    // fusion must be bit-identical to the in-place switch interpreter.
    Cfg.Mode = ExecMode::Interp;
    Cfg.ThreadedDispatch = true;
    return Cfg;
  }
  if (Tier == "tiered" || Tier == "tiered-threaded") {
    // The wizard-tiered / wizard-tiered-threaded shapes: start in the
    // interpreter, tier up hot functions (incl. OSR at loop backedges),
    // tier down at deopt checkpoints. The hotness threshold is far below
    // the production 256 so fuzz-sized programs (trip counts 1..6, a
    // handful of calls) genuinely cross tier boundaries mid-run.
    Cfg.Mode = ExecMode::Tiered;
    Cfg.Compiler = CompilerKind::SinglePass;
    Cfg.ThreadedDispatch = Tier == "tiered-threaded";
    Cfg.TierUpThreshold = 4;
    Cfg.Opts.EmitDeoptChecks = true;
    Cfg.Opts.EmitOsrEntries = true;
    return Cfg;
  }
  Cfg.Mode = ExecMode::Jit;
  Cfg.Opts.Tags = TagMode::None;
  if (Tier == "spc")
    Cfg.Compiler = CompilerKind::SinglePass;
  else if (Tier == "copypatch")
    Cfg.Compiler = CompilerKind::CopyPatch;
  else if (Tier == "twopass")
    Cfg.Compiler = CompilerKind::TwoPass;
  else
    Cfg.Compiler = CompilerKind::Optimizing;
  return Cfg;
}

TierRun runOneTier(const std::string &Tier, const std::vector<uint8_t> &Bytes,
                   const std::string &ExportName, const std::vector<Value> &Args,
                   CompileCache *Cache = nullptr, uint64_t Fuel = 0,
                   const std::string &DiskDir = std::string()) {
  TierRun Run;
  Run.Tier = Tier;
  // "<tier>+mon" runs the tier with branch + coverage monitors attached;
  // "<tier>+fuel" runs it governed under the caller-supplied fuel budget.
  std::string Base = Tier;
  bool Monitors = false;
  bool Fueled = false;
  if (Base.size() > 4 && Base.compare(Base.size() - 4, 4, "+mon") == 0) {
    Base = Base.substr(0, Base.size() - 4);
    Monitors = true;
  }
  if (Base.size() > 5 && Base.compare(Base.size() - 5, 5, "+fuel") == 0) {
    Base = Base.substr(0, Base.size() - 5);
    Fueled = true;
  }
  // The one place that decides cache usage for differ runs: plain tiers
  // load a fresh module per seed, so the process-wide cache would only
  // grow (never hit) — they run cold. The "+cache" tiers pass a private
  // per-seed cache to diff cache-cold against cache-warm execution.
  EngineConfig Cfg = tierConfig(Base);
  if (Fueled)
    Cfg.FuelBudget = Fuel;
  Cfg.UseCompileCache = Cache != nullptr;
  // The disk level is opt-in per run: only the "+disk" tiers pass a
  // directory. Explicitly off otherwise, so a WISP_CACHE_DIR in the
  // fuzzer's environment can never leak persisted artifacts between
  // seeds or campaigns.
  Cfg.DiskCacheDir = DiskDir;
  if (!DiskDir.empty())
    Cfg.UseDiskCache = true;
  // Compile-check-then-execute: every artifact any differ engine builds is
  // statically verified before it runs. A rejection is a first-class
  // finding (TierRun::VerifierReject) — the fuzzer no longer needs to
  // execute a miscompile into visibility for this class of bug.
  Cfg.VerifyArtifacts = true;
  Engine E(Cfg, Cache);
  WasmError Err;
  std::unique_ptr<LoadedModule> LM = E.load(Bytes, &Err);
  if (!LM) {
    Run.LoadError = strFormat("%s (offset %zu)", Err.Message.c_str(), Err.Offset);
    Run.VerifierReject = E.verifyError();
    return Run;
  }
  Run.LoadOk = true;
  BranchMonitor Branches;
  CoverageMonitor Coverage;
  if (Monitors) {
    Branches.attach(*LM->Inst, E.probes());
    Coverage.attach(*LM->Inst, E.probes());
    E.reinstrument(*LM);
  }
  Run.CacheHits = LM->Stats.CacheHits;
  Run.DiskHits = LM->Stats.DiskHits;
  Run.Trap = E.invoke(*LM, ExportName, Args, &Run.Results);
  if (Run.Trap != TrapReason::None) {
    Run.Results.clear();
    Run.TrapIp = E.thread().TrapIp;
    // The optimizing pipeline records no line table; its trap bytecode
    // offsets are meaningless and excluded from trap-site comparison.
    Run.TrapPcKnown = Base != "opt";
  }
  Run.HighWaterFrames = E.thread().HighWaterFrames;
  const LinearMemory &Mem = LM->Inst->Memory;
  Run.Memory.assign(Mem.data(), Mem.data() + Mem.byteSize());
  for (const Global &G : LM->Inst->Globals)
    Run.GlobalBits.push_back(G.Bits);
  if (Monitors) {
    Run.Instrumented = true;
    for (const auto &Site : Branches.sites()) {
      Run.BranchCounts.push_back(Site->Taken);
      Run.BranchCounts.push_back(Site->NotTaken);
    }
    for (uint32_t I = 0; I < LM->Inst->Funcs.size(); ++I)
      Run.EntryCounts.push_back(Coverage.entries(I));
  }
  // Lazy/tiered/instrumented compiles degrade to the interpreter on a
  // verifier rejection instead of failing the load; pick the findings up
  // here so they still surface as a divergence.
  Run.VerifierReject = E.verifyError();
  return Run;
}

/// Runs a "<base>+cache" configuration: the same seed twice against one
/// private compile cache — cache-cold (populating) then cache-warm
/// (served) — and self-compares the two before the caller diffs the warm
/// run against the reference tier. Returns the warm run.
TierRun runCacheTier(const std::string &Tier, const std::vector<uint8_t> &Bytes,
                     const std::string &ExportName,
                     const std::vector<Value> &Args) {
  std::string Base = Tier.substr(0, Tier.size() - 6); // Strip "+cache".
  CompileCache Cache;
  TierRun Cold = runOneTier(Base, Bytes, ExportName, Args, &Cache);
  TierRun Warm = runOneTier(Base, Bytes, ExportName, Args, &Cache);
  Cold.Tier = Tier + "(cold)";
  Warm.Tier = Tier;
  Warm.SelfCheck = compareTierRuns(Cold, Warm);
  if (!Warm.SelfCheck.empty())
    Warm.SelfCheck = "cache-cold vs cache-warm: " + Warm.SelfCheck;
  else if (Warm.LoadOk && Warm.CacheHits == 0)
    Warm.SelfCheck = "cache-warm load recorded no cache hits";
  // Verification happens at insert time, so only the cold run can reject;
  // carry its findings on the run the caller keeps.
  if (Warm.VerifierReject.empty())
    Warm.VerifierReject = Cold.VerifierReject;
  return Warm;
}

/// Creates a unique private directory for one "+disk" tier run, or an
/// empty string on failure (the tier then runs disk-less and self-compares
/// trivially rather than failing the campaign on an environment problem).
std::string makeDiskTierDir() {
  const char *Tmp = getenv("TMPDIR");
  std::string Templ =
      std::string(Tmp && *Tmp ? Tmp : "/tmp") + "/wisp-fuzz-disk-XXXXXX";
  std::vector<char> Buf(Templ.begin(), Templ.end());
  Buf.push_back('\0');
  if (!mkdtemp(Buf.data()))
    return std::string();
  return std::string(Buf.data());
}

/// Removes a disk-tier directory and its artifact files (the store writes
/// a flat directory of .wac files — no recursion needed).
void removeDiskTierDir(const std::string &Dir) {
  if (Dir.empty())
    return;
  if (DIR *D = opendir(Dir.c_str())) {
    while (struct dirent *E = readdir(D)) {
      std::string Name = E->d_name;
      if (Name != "." && Name != "..")
        ::remove((Dir + "/" + Name).c_str());
    }
    closedir(D);
  }
  ::rmdir(Dir.c_str());
}

/// Runs a "<base>+disk" configuration: the same seed disk-cold then
/// disk-warm against a private per-seed artifact directory. The warm run
/// gets a *fresh* in-process compile cache, so the only way it can skip
/// compilation is through the disk: serialize → publish → load →
/// deserialize → re-verify → admit, i.e. a cross-process warm start in
/// miniature. The two runs must be indistinguishable, and the warm load
/// must actually hit the disk. Returns the warm run.
TierRun runDiskTier(const std::string &Tier, const std::vector<uint8_t> &Bytes,
                    const std::string &ExportName,
                    const std::vector<Value> &Args) {
  std::string Base = Tier.substr(0, Tier.size() - 5); // Strip "+disk".
  std::string Dir = makeDiskTierDir();
  TierRun Cold, Warm;
  {
    CompileCache ColdCache;
    Cold = runOneTier(Base, Bytes, ExportName, Args, &ColdCache, 0, Dir);
  }
  {
    // Fresh process-level cache: nothing in memory survives from the cold
    // run, exactly like a new process sharing the directory.
    CompileCache WarmCache;
    Warm = runOneTier(Base, Bytes, ExportName, Args, &WarmCache, 0, Dir);
  }
  Cold.Tier = Tier + "(cold)";
  Warm.Tier = Tier;
  Warm.SelfCheck = compareTierRuns(Cold, Warm);
  if (!Warm.SelfCheck.empty())
    Warm.SelfCheck = "disk-cold vs disk-warm: " + Warm.SelfCheck;
  else if (Warm.LoadOk && !Dir.empty() && Warm.DiskHits == 0)
    Warm.SelfCheck = "disk-warm load recorded no disk hits";
  if (Warm.VerifierReject.empty())
    Warm.VerifierReject = Cold.VerifierReject;
  removeDiskTierDir(Dir);
  return Warm;
}

/// Runs a "<base>+pool" configuration: the same seed twice through one
/// private compile cache + instance pool — fresh-instantiated (the pool
/// starts empty) then pool-recycled (the first run's retired instance is
/// re-imaged in place) — and self-compares the two before the caller
/// diffs the pooled run against the reference tier. Pooling must be
/// perfectly transparent: any observable difference is state leaking
/// between instantiations. Returns the pooled run.
TierRun runPoolTier(const std::string &Tier, const std::vector<uint8_t> &Bytes,
                    const std::string &ExportName,
                    const std::vector<Value> &Args) {
  std::string Base = Tier.substr(0, Tier.size() - 5); // Strip "+pool".
  CompileCache Cache;
  InstancePool Pool;
  // Whether the previous RunOnce actually pooled its retired instance;
  // recycle() legitimately declines (module not imageable, live heap
  // objects), and only a recycled instance obligates the next load to hit.
  bool Recycled = false;
  auto RunOnce = [&](const std::string &Label) {
    TierRun Run;
    Run.Tier = Label;
    EngineConfig Cfg = tierConfig(Base);
    Cfg.UseCompileCache = true;
    Cfg.PoolInstances = true;
    Cfg.VerifyArtifacts = true;
    Engine E(Cfg, &Cache, &Pool);
    WasmError Err;
    std::unique_ptr<LoadedModule> LM = E.load(Bytes, &Err);
    if (!LM) {
      Run.LoadError =
          strFormat("%s (offset %zu)", Err.Message.c_str(), Err.Offset);
      Run.VerifierReject = E.verifyError();
      return Run;
    }
    Run.LoadOk = true;
    Run.CacheHits = LM->Stats.CacheHits;
    Run.PoolHits = LM->Stats.PoolHits;
    Run.Trap = E.invoke(*LM, ExportName, Args, &Run.Results);
    if (Run.Trap != TrapReason::None) {
      Run.Results.clear();
      Run.TrapIp = E.thread().TrapIp;
      Run.TrapPcKnown = Base != "opt";
    }
    Run.HighWaterFrames = E.thread().HighWaterFrames;
    // Capture every observable before recycle() hands the instance (and
    // its linear memory) back to the pool.
    const LinearMemory &Mem = LM->Inst->Memory;
    Run.Memory.assign(Mem.data(), Mem.data() + Mem.byteSize());
    for (const Global &G : LM->Inst->Globals)
      Run.GlobalBits.push_back(G.Bits);
    Run.VerifierReject = E.verifyError();
    Recycled = E.recycle(std::move(LM));
    return Run;
  };
  TierRun Fresh = RunOnce(Tier + "(fresh)");
  bool FreshRecycled = Recycled;
  TierRun Pooled = RunOnce(Tier);
  Pooled.SelfCheck = compareTierRuns(Fresh, Pooled);
  if (!Pooled.SelfCheck.empty())
    Pooled.SelfCheck = "fresh vs pooled: " + Pooled.SelfCheck;
  else if (FreshRecycled && Pooled.PoolHits == 0)
    Pooled.SelfCheck = "pooled load recorded no pool hits";
  if (Pooled.VerifierReject.empty())
    Pooled.VerifierReject = Fresh.VerifierReject;
  return Pooled;
}

/// Deterministic per-seed fuel budget: a small FNV-1a hash of the module
/// bytes and argument bits folded into 1..32. Budgets this tiny land the
/// exhaustion point inside the interesting part of nearly every generated
/// program (frame pushes and loop headers each cost one unit), and deriving
/// them from the seed itself keeps replays and shrinks exact.
uint64_t fuelBudgetFor(const std::vector<uint8_t> &Bytes,
                       const std::vector<Value> &Args) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (uint8_t B : Bytes)
    H = (H ^ B) * 0x100000001b3ULL;
  for (const Value &V : Args)
    H = (H ^ V.Bits) * 0x100000001b3ULL;
  return 1 + (H % 32);
}

/// Checks one executed run against the static analyzer's guarantees.
/// Returns an empty string when every bound held, else a description of
/// the first violation (reported with the "static-bounds" signature).
/// Upper bounds (call depth, memory pages, reachability) hold for partial
/// executions too, so governed/fuel runs are checked the same way; the
/// MustDepth lower bound only constrains trap-free complete runs and is
/// gated on \p CheckMustDepth.
std::string staticBoundsViolation(const Module &M, const ModuleAnalysis &A,
                                  const std::string &ExportName,
                                  const TierRun &Run, bool CheckMustDepth) {
  if (!Run.LoadOk)
    return "";
  if (A.DepthBounded && Run.HighWaterFrames > A.DepthBound)
    return strFormat("%s: observed call depth %u exceeds the static bound %u",
                     Run.Tier.c_str(), Run.HighWaterFrames, A.DepthBound);
  if (A.PagesBounded &&
      Run.Memory.size() > size_t(A.PageBound) * WasmPageSize)
    return strFormat("%s: observed memory %zu bytes exceeds the static bound "
                     "of %u pages",
                     Run.Tier.c_str(), Run.Memory.size(), A.PageBound);
  // Coverage-instrumented runs witness per-function entry: an executed
  // function the analyzer called unreachable is a reachability unsoundness.
  for (size_t I = 0; I < Run.EntryCounts.size() && I < A.Funcs.size(); ++I)
    if (Run.EntryCounts[I] > 0 && !A.Funcs[I].Reachable)
      return strFormat("%s: func %zu executed (%llu entries) but was "
                       "reported statically unreachable",
                       Run.Tier.c_str(), I,
                       (unsigned long long)Run.EntryCounts[I]);
  if (CheckMustDepth && Run.Trap == TrapReason::None) {
    if (const Export *E = M.findExport(ExportName, ExternKind::Func)) {
      uint32_t Must = A.Funcs[E->Index].MustDepth;
      if (Run.HighWaterFrames < Must)
        return strFormat("%s: trap-free run reached depth %u but the "
                         "analyzer guarantees a minimum of %s",
                         Run.Tier.c_str(), Run.HighWaterFrames,
                         Must == AnalysisDepthInfinite
                             ? "infinity (unconditional recursion)"
                             : strFormat("%u", Must).c_str());
    }
  }
  return "";
}

} // namespace

std::string compareTierRuns(const TierRun &Ref, const TierRun &Run) {
  if (Ref.LoadOk != Run.LoadOk)
    return strFormat("%s: load %s but %s: load %s (%s)", Ref.Tier.c_str(),
                  Ref.LoadOk ? "ok" : "failed", Run.Tier.c_str(),
                  Run.LoadOk ? "ok" : "failed",
                  (Run.LoadOk ? Ref.LoadError : Run.LoadError).c_str());
  if (!Ref.LoadOk)
    return ""; // Both failed to load identically observable: not a tier bug.
  if (Ref.Trap != Run.Trap)
    return strFormat("trap mismatch: %s=%s %s=%s", Ref.Tier.c_str(),
                  trapReasonName(Ref.Trap), Run.Tier.c_str(),
                  trapReasonName(Run.Trap));
  // Trap-site agreement: the faulting bytecode offset must match, not just
  // the trap kind — a tier trapping for the right reason at the wrong
  // instruction is still a miscompile.
  if (Ref.Trap != TrapReason::None && Ref.TrapPcKnown && Run.TrapPcKnown &&
      Ref.TrapIp != Run.TrapIp)
    return strFormat("trap-site mismatch (%s): %s=+0x%x %s=+0x%x",
                  trapReasonName(Ref.Trap), Ref.Tier.c_str(), Ref.TrapIp,
                  Run.Tier.c_str(), Run.TrapIp);
  if (Ref.Results.size() != Run.Results.size())
    return strFormat("result arity mismatch: %s=%zu %s=%zu", Ref.Tier.c_str(),
                  Ref.Results.size(), Run.Tier.c_str(), Run.Results.size());
  for (size_t I = 0; I < Ref.Results.size(); ++I)
    if (!(Ref.Results[I] == Run.Results[I]))
      return strFormat("result %zu mismatch: %s=%s %s=%s", I, Ref.Tier.c_str(),
                    Ref.Results[I].toString().c_str(), Run.Tier.c_str(),
                    Run.Results[I].toString().c_str());
  if (Ref.Memory.size() != Run.Memory.size())
    return strFormat("memory size mismatch: %s=%zu %s=%zu", Ref.Tier.c_str(),
                  Ref.Memory.size(), Run.Tier.c_str(), Run.Memory.size());
  if (!Ref.Memory.empty() &&
      memcmp(Ref.Memory.data(), Run.Memory.data(), Ref.Memory.size()) != 0) {
    size_t At = 0;
    while (Ref.Memory[At] == Run.Memory[At])
      ++At;
    return strFormat("memory mismatch at 0x%zx: %s=0x%02x %s=0x%02x", At,
                  Ref.Tier.c_str(), Ref.Memory[At], Run.Tier.c_str(),
                  Run.Memory[At]);
  }
  if (Ref.GlobalBits.size() != Run.GlobalBits.size())
    return strFormat("global count mismatch: %s=%zu %s=%zu", Ref.Tier.c_str(),
                  Ref.GlobalBits.size(), Run.Tier.c_str(),
                  Run.GlobalBits.size());
  for (size_t I = 0; I < Ref.GlobalBits.size(); ++I)
    if (Ref.GlobalBits[I] != Run.GlobalBits[I])
      return strFormat("global %zu mismatch: %s=0x%llx %s=0x%llx", I,
                    Ref.Tier.c_str(),
                    (unsigned long long)Ref.GlobalBits[I], Run.Tier.c_str(),
                    (unsigned long long)Run.GlobalBits[I]);
  if (Ref.Instrumented && Run.Instrumented) {
    // Instrumentation state must be bit-identical: the same probes fired
    // the same number of times with the same observed conditions.
    if (Ref.BranchCounts.size() != Run.BranchCounts.size())
      return strFormat("branch site count mismatch: %s=%zu %s=%zu",
                    Ref.Tier.c_str(), Ref.BranchCounts.size(),
                    Run.Tier.c_str(), Run.BranchCounts.size());
    for (size_t I = 0; I < Ref.BranchCounts.size(); ++I)
      if (Ref.BranchCounts[I] != Run.BranchCounts[I])
        return strFormat("branch site %zu %s mismatch: %s=%llu %s=%llu", I / 2,
                      I % 2 ? "not-taken" : "taken", Ref.Tier.c_str(),
                      (unsigned long long)Ref.BranchCounts[I],
                      Run.Tier.c_str(),
                      (unsigned long long)Run.BranchCounts[I]);
    for (size_t I = 0; I < Ref.EntryCounts.size(); ++I)
      if (Ref.EntryCounts[I] != Run.EntryCounts[I])
        return strFormat("coverage of func %zu mismatch: %s=%llu %s=%llu", I,
                      Ref.Tier.c_str(),
                      (unsigned long long)Ref.EntryCounts[I],
                      Run.Tier.c_str(),
                      (unsigned long long)Run.EntryCounts[I]);
  }
  return "";
}

DiffReport runAllTiers(const std::vector<uint8_t> &Bytes,
                       const std::string &ExportName,
                       const std::vector<Value> &Args) {
  DiffReport Report;
  for (const std::string &Tier : differTierNames())
    Report.Runs.push_back(runOneTier(Tier, Bytes, ExportName, Args));
  // Compile-cache configurations: the seed runs cache-cold then
  // cache-warm against a private cache ("spc+cache" covers compiled
  // MCode + the shared module artifact, "threaded+cache" covers the
  // pre-decoded threaded IR). The warm run must be indistinguishable from
  // the cold one — identical results, traps, trap-site PCs, memory,
  // globals — and from the reference.
  Report.Runs.push_back(runCacheTier("spc+cache", Bytes, ExportName, Args));
  Report.Runs.push_back(
      runCacheTier("threaded+cache", Bytes, ExportName, Args));
  // Persistent-cache configurations: disk-cold then disk-warm against a
  // private per-seed directory, the warm run on a fresh in-process cache
  // so the artifact must round-trip through the disk (serialize, publish,
  // load, deserialize, re-verify). "spc+disk" covers MCode, "threaded+disk"
  // the pre-decoded IR.
  Report.Runs.push_back(runDiskTier("spc+disk", Bytes, ExportName, Args));
  Report.Runs.push_back(runDiskTier("threaded+disk", Bytes, ExportName, Args));
  // Instance-pool configurations: the seed runs fresh-instantiated, its
  // retired instance is recycled into a private pool, and the seed runs
  // again from the re-imaged pooled instance. The pooled run must be
  // indistinguishable from the fresh one (results, traps, trap-site PCs,
  // final memory, globals) and from the reference: pooling can never leak
  // state between instantiations.
  Report.Runs.push_back(runPoolTier("spc+pool", Bytes, ExportName, Args));
  Report.Runs.push_back(runPoolTier("threaded+pool", Bytes, ExportName, Args));
  // Probe/monitor configurations: both interpreter dispatch strategies run
  // fully instrumented. Their semantics are checked against the reference
  // below, and their instrumentation state against each other (last loop
  // iteration: threaded+mon is compared to int+mon).
  Report.Runs.push_back(runOneTier("int+mon", Bytes, ExportName, Args));
  Report.Runs.push_back(runOneTier("threaded+mon", Bytes, ExportName, Args));
  const TierRun &Ref = Report.Runs[0];
  if (!Ref.LoadOk) {
    // The reference interpreter must accept every generated module; a
    // reject here is a generator (or decoder/validator) bug, surfaced as
    // a divergence so campaigns cannot silently skip it.
    Report.Diverged = true;
    Report.Detail = strFormat("reference load failed: %s", Ref.LoadError.c_str());
    return Report;
  }
  // Static verifier rejections outrank behavioral comparison: a tier whose
  // artifact failed translation validation is a finding even if whatever
  // it ran instead behaved identically. Distinct signature prefix so the
  // shrinker and campaign reports bucket these separately.
  for (const TierRun &Run : Report.Runs) {
    if (!Run.VerifierReject.empty()) {
      Report.Diverged = true;
      Report.Detail = strFormat("verifier rejection (%s): %s",
                                Run.Tier.c_str(), Run.VerifierReject.c_str());
      return Report;
    }
  }
  for (size_t I = 1; I < Report.Runs.size(); ++I) {
    if (!Report.Runs[I].SelfCheck.empty()) {
      Report.Diverged = true;
      Report.Detail = Report.Runs[I].Tier + ": " + Report.Runs[I].SelfCheck;
      return Report;
    }
    std::string Mismatch = compareTierRuns(Ref, Report.Runs[I]);
    if (!Mismatch.empty()) {
      Report.Diverged = true;
      Report.Detail = Mismatch;
      return Report;
    }
  }
  // Cross-check the two instrumented runs: identical probe firings and
  // branch outcomes regardless of dispatch strategy.
  std::string Mismatch = compareTierRuns(Report.Runs[Report.Runs.size() - 2],
                                         Report.Runs.back());
  if (!Mismatch.empty()) {
    Report.Diverged = true;
    Report.Detail = Mismatch;
    return Report;
  }
  // Static-bound soundness: every executed run is a dynamic witness against
  // the analyzer's guarantees — observed call depth vs. DepthBound,
  // observed pages vs. PageBound, coverage entries vs. reachability, and
  // (trap-free runs) the MustDepth floor. A violation is an analyzer bug,
  // reported with its own "static-bounds" signature so campaigns bucket it
  // apart from tier divergences.
  WasmError AErr;
  std::unique_ptr<Module> AM = decodeModule(Bytes, &AErr);
  if (AM && !validateModule(*AM, &AErr))
    AM.reset(); // Reference loaded, so this cannot happen; stay safe.
  ModuleAnalysis MA;
  if (AM)
    MA = analyzeModule(*AM);
  for (const TierRun &Run : Report.Runs) {
    if (!AM)
      break;
    std::string V = staticBoundsViolation(*AM, MA, ExportName, Run, true);
    if (!V.empty()) {
      Report.Diverged = true;
      Report.Detail = "static-bounds: " + V;
      return Report;
    }
  }
  // Fuel-determinism configurations: every tier re-runs the seed governed
  // by the same deliberately tiny, seed-derived fuel budget and must halt
  // in exactly the same state as the switch interpreter under that budget
  // — same trap (FuelExhausted or an earlier genuine trap), same
  // exhaustion-site PC, same final memory and globals. This is the
  // guarantee that makes a fuel budget a point in the execution rather
  // than a tier-dependent approximation. These runs are compared within
  // the family (their traps legitimately differ from the ungoverned
  // reference) and are not appended to Report.Runs.
  uint64_t Budget = fuelBudgetFor(Bytes, Args);
  std::vector<TierRun> FuelRuns;
  for (const std::string &Tier : differTierNames())
    FuelRuns.push_back(
        runOneTier(Tier + "+fuel", Bytes, ExportName, Args, nullptr, Budget));
  for (const TierRun &Run : FuelRuns) {
    if (!Run.VerifierReject.empty()) {
      Report.Diverged = true;
      Report.Detail = strFormat("verifier rejection (%s): %s",
                                Run.Tier.c_str(), Run.VerifierReject.c_str());
      return Report;
    }
  }
  // Upper bounds hold for partial executions, so the governed family is
  // checked too (MustDepth is not: fuel exhaustion legitimately halts a
  // run short of its guaranteed depth).
  for (const TierRun &Run : FuelRuns) {
    if (!AM)
      break;
    std::string V = staticBoundsViolation(*AM, MA, ExportName, Run, false);
    if (!V.empty()) {
      Report.Diverged = true;
      Report.Detail = "static-bounds: " + V;
      return Report;
    }
  }
  for (size_t I = 1; I < FuelRuns.size(); ++I) {
    std::string FuelMismatch = compareTierRuns(FuelRuns[0], FuelRuns[I]);
    if (!FuelMismatch.empty()) {
      Report.Diverged = true;
      Report.Detail = strFormat("fuel budget %llu: %s",
                                (unsigned long long)Budget,
                                FuelMismatch.c_str());
      return Report;
    }
  }
  return Report;
}

std::vector<Value> argsForSeed(uint64_t Seed,
                               const std::vector<ValType> &Params) {
  Rng R(Seed * 0x9E3779B97F4A7C15ULL + 0xC0FFEE);
  std::vector<Value> Args;
  for (ValType T : Params) {
    switch (T) {
    case ValType::I32: {
      static const int32_t Pool[] = {0, 1, -1, 7, 100, 3528, 3780,
                                     INT32_MIN, INT32_MAX};
      Args.push_back(R.chance(1, 2)
                         ? Value::makeI32(Pool[R.below(9)])
                         : Value::makeI32(int32_t(R.next())));
      break;
    }
    case ValType::I64:
      Args.push_back(R.chance(1, 2)
                         ? Value::makeI64(int64_t(R.below(1000)) - 500)
                         : Value::makeI64(int64_t(R.next())));
      break;
    case ValType::F32:
      Args.push_back(
          Value::makeF32(float(int64_t(R.below(4000)) - 2000) / 16.0f));
      break;
    case ValType::F64:
      Args.push_back(
          Value::makeF64(double(int64_t(R.below(200000)) - 100000) / 64.0));
      break;
    default:
      Args.push_back(defaultValue(T)); // Null reference.
      break;
    }
  }
  return Args;
}

std::vector<std::vector<Value>>
replayArgTuples(const std::vector<ValType> &Params) {
  // Fixed per-type pools; tuple K assigns pool[(J + 3K) % N] to parameter J.
  // The i32 pool deliberately contains the gcd pair (3528, 3780) so the
  // PR-1 aliasing reproducers exercise their original failing inputs.
  static const int32_t I32Pool[] = {0,    1,    -1,        3528,
                                    3780, 7,    INT32_MIN, INT32_MAX};
  static const int64_t I64Pool[] = {0,  1,    -1,         1234567890123LL,
                                    -7, 1000, INT64_MIN, INT64_MAX};
  static const double FloatPool[] = {0.0,  1.5,     -2.25,   1e9,
                                     0.5, -1024.0, 3.140625, 1e-9};
  // Nullary exports (e.g. baked-args "repro" wrappers) have exactly one
  // distinct invocation; don't replay it four times.
  if (Params.empty())
    return {{}};
  std::vector<std::vector<Value>> Tuples;
  for (uint32_t K = 0; K < 4; ++K) {
    std::vector<Value> Args;
    for (size_t J = 0; J < Params.size(); ++J) {
      size_t Pick = (J + 3 * K) % 8;
      switch (Params[J]) {
      case ValType::I32:
        Args.push_back(Value::makeI32(I32Pool[Pick]));
        break;
      case ValType::I64:
        Args.push_back(Value::makeI64(I64Pool[Pick]));
        break;
      case ValType::F32:
        Args.push_back(Value::makeF32(float(FloatPool[Pick])));
        break;
      case ValType::F64:
        Args.push_back(Value::makeF64(FloatPool[Pick]));
        break;
      default:
        Args.push_back(defaultValue(Params[J]));
        break;
      }
    }
    Tuples.push_back(std::move(Args));
  }
  return Tuples;
}

} // namespace wisp
