//===- fuzz/differ.h - multi-tier differential runner ----------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a module export through every execution tier (both interpreter
/// dispatch strategies, single-pass, copy-and-patch, two-pass, optimizing,
/// and the tiered/OSR configurations) and compares traps, trap sites,
/// results, final linear memory and final mutable-global state. Any
/// disagreement is a divergence: the paper's central claim is that all
/// tiers compute identical semantics.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_FUZZ_DIFFER_H
#define WISP_FUZZ_DIFFER_H

#include "runtime/trap.h"
#include "runtime/value.h"
#include "wasm/types.h"

#include <cstdint>
#include <string>
#include <vector>

namespace wisp {

/// One tier's observation of a run.
struct TierRun {
  std::string Tier;
  bool LoadOk = false;
  std::string LoadError;
  TrapReason Trap = TrapReason::None;
  /// Bytecode offset of the faulting instruction when Trap != None. All
  /// tiers report the same module-byte coordinate: the interpreters
  /// directly, the single-pass JIT pipelines through the MCode line table.
  uint32_t TrapIp = 0;
  /// False on the optimizing tier, which reorders and folds across
  /// opcodes and cannot attribute a trap to one bytecode; trap-site
  /// agreement is only checked between runs where this is true.
  bool TrapPcKnown = false;
  std::vector<Value> Results;
  /// High-water wasm frame count the run's thread observed (start function
  /// included) — the dynamic witness checked against the static analyzer's
  /// call-depth bounds on every seed.
  uint32_t HighWaterFrames = 0;
  std::vector<uint8_t> Memory;      ///< Final linear memory contents.
  std::vector<uint64_t> GlobalBits; ///< Final global values, in order.
  /// Monitor configurations ("+mon" tiers): branch and coverage monitors
  /// were attached before the run; instrumentation state is compared
  /// across tiers like any other observable.
  bool Instrumented = false;
  /// Per-site branch outcomes, flattened [taken0, nottaken0, taken1, ...]
  /// in deterministic attach order.
  std::vector<uint64_t> BranchCounts;
  /// Per-function entry counts (coverage monitor).
  std::vector<uint64_t> EntryCounts;
  /// Compile-cache hits recorded by this run's load ("+cache" tiers).
  uint64_t CacheHits = 0;
  /// Instance-pool hits recorded by this run's load ("+pool" tiers): the
  /// load re-imaged a recycled instance instead of instantiating fresh.
  uint64_t PoolHits = 0;
  /// On-disk artifact-cache hits recorded by this run's load ("+disk"
  /// tiers): the load deserialized, re-verified and admitted a persisted
  /// artifact instead of compiling.
  uint64_t DiskHits = 0;
  /// "+cache" tiers run the seed twice against a private compile cache —
  /// cache-cold then cache-warm — and self-compare before the cross-tier
  /// comparison. "+pool" tiers do the same against a private instance
  /// pool — fresh-instantiated then pool-recycled. "+disk" tiers run
  /// disk-cold then disk-warm against a private on-disk store, with a
  /// fresh in-process cache for the warm run so only the disk level can
  /// serve it (a cross-process warm start in miniature). Non-empty = the
  /// two runs disagreed (or the second load unexpectedly recorded no
  /// cache/pool/disk hits); reported as a divergence.
  std::string SelfCheck;
  /// Every differ engine runs with VerifyArtifacts forced on; a static
  /// verifier rejection of any artifact this tier built (at load or during
  /// lazy/tiered compilation) lands here and is reported as a first-class
  /// divergence with its own signature — no execution needed to expose it.
  std::string VerifierReject;
};

/// Verdict of a differential run across all tiers.
struct DiffReport {
  bool Diverged = false;
  std::string Detail; ///< Human-readable description of the first mismatch.
  std::vector<TierRun> Runs;
};

/// The differ tier names, in comparison order (index 0 is the reference).
/// Beyond the six execution tiers, "tiered" and "tiered-threaded" run the
/// wizard-tiered / wizard-tiered-threaded shapes (interpreter + SPC with
/// OSR tier-up and deopt checkpoints) with a fuzz-friendly low hotness
/// threshold so tier transitions actually happen on generator-sized
/// programs.
const std::vector<std::string> &differTierNames();

/// Loads \p Bytes on every tier, invokes \p ExportName with \p Args, and
/// compares everything observable. A load failure on any tier (including
/// the reference) is reported as a divergence. Beyond the six execution
/// tiers, two probe/monitor configurations run both interpreter dispatch
/// strategies with branch + coverage monitors attached ("int+mon",
/// "threaded+mon"): monitors must not perturb semantics, and the two
/// dispatch strategies must observe bit-identical instrumentation state
/// (same probe firings, same branch outcomes). Two compile-cache
/// configurations ("spc+cache", "threaded+cache") run the seed cache-cold
/// and cache-warm against a private compile cache: both runs must agree
/// with each other (results, traps, trap-site PCs, memory, globals) and
/// with the reference, and the warm load must actually hit the cache.
/// Two instance-pool configurations ("spc+pool", "threaded+pool") run the
/// seed fresh, recycle the retired instance into a private pool, then run
/// it again from the re-imaged pooled instance: pooling must be perfectly
/// transparent — identical results, traps, trap-site PCs, final memory
/// and globals — so no state can ever leak between instantiations, and
/// the second load must actually hit the pool whenever the first
/// instance was recyclable. Two persistent-cache configurations
/// ("spc+disk", "threaded+disk") run the seed disk-cold then disk-warm
/// against a private per-seed directory, giving the warm run a fresh
/// in-process compile cache so the artifact must travel through
/// serialize → disk → deserialize → re-verify: the cross-process warm
/// start, checked for transparency on every seed.
DiffReport runAllTiers(const std::vector<uint8_t> &Bytes,
                       const std::string &ExportName,
                       const std::vector<Value> &Args);

/// Compares two tier runs; returns an empty string on agreement, else a
/// description of the first mismatch.
std::string compareTierRuns(const TierRun &Ref, const TierRun &Run);

/// Deterministic per-seed arguments for a signature (fuzzing campaigns).
std::vector<Value> argsForSeed(uint64_t Seed,
                               const std::vector<ValType> &Params);

/// Fixed argument tuples for corpus replay: every tuple is deterministic
/// and drawn from per-type interesting-value tables, so corpus reruns
/// reproduce exactly.
std::vector<std::vector<Value>>
replayArgTuples(const std::vector<ValType> &Params);

} // namespace wisp

#endif // WISP_FUZZ_DIFFER_H
