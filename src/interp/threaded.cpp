//===- interp/threaded.cpp - threaded-dispatch interpreter ------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Executes the pre-decoded threaded IR: one fixed-size unit per dispatch,
// immediates already decoded and widened, branch targets pre-resolved to IR
// offsets (no STP bookkeeping on the hot path), and superinstructions
// covering the dominant op pairs/triples/quads. Dispatch is computed-goto
// when WISP_THREADED_DISPATCH is on and the compiler supports labels as
// values; otherwise a portable switch over the same handler bodies.
//
// The frame contract matches the switch interpreter exactly: Ip/Stp/Sp are
// written back at observation points (calls, probes, traps, backedge
// hooks), so probes, OSR tier-up and deopt tier-down see the same
// coordinates regardless of the dispatch strategy. Any resume point the IR
// cannot express (no pre-decoded body, or a deopt landing inside a fused
// superinstruction) delegates the remainder of the run to the switch
// interpreter, which can resume anywhere.
//
//===----------------------------------------------------------------------===//

#include "interp/threaded.h"

#include "interp/interpreter.h"
#include "interp/predecode.h"
#include "runtime/hooks.h"
#include "runtime/numerics.h"

#include <cstring>

using namespace wisp;

#ifndef WISP_THREADED_DISPATCH
#define WISP_THREADED_DISPATCH 1
#endif
#if WISP_THREADED_DISPATCH && (defined(__GNUC__) || defined(__clang__))
#define WISP_DISPATCH_GOTO 1
#else
#define WISP_DISPATCH_GOTO 0
#endif

#define WISP_UNLIKELY(x) __builtin_expect(!!(x), 0)

RunSignal wisp::runThreadedInterpreter(Thread &T, size_t EntryDepth) {
  assert(!T.Frames.empty() && T.Frames.size() >= EntryDepth);
  assert(T.top().Kind == FrameKind::Interp && "top frame is not interp");

  Instance *Inst = T.Inst;
  uint64_t *S = T.VS.slots();
  uint8_t *Tg = T.VS.tags();

  // Per-frame cached state.
  Frame *F = nullptr;
  FuncInstance *Func = nullptr;
  const IrUnit *Units = nullptr;
  const BrCase *Cases = nullptr;
  const IrUnit *U = nullptr;
  uint32_t SpAbs = 0;
  uint32_t Vfp = 0;
  uint32_t LocalBase = 0; // == Vfp (locals start at frame base).
  bool HasProbes = false;
  uint8_t *MemData = Inst->HasMemory ? Inst->Memory.data() : nullptr;
  uint64_t MemSize = Inst->HasMemory ? Inst->Memory.byteSize() : 0;

  // Re-reads everything from the top frame (and the function's possibly
  // replaced ThreadedCode). Returns false when the frame cannot run on
  // this tier — the caller then delegates to the switch interpreter.
  auto restore = [&]() -> bool {
    F = &T.Frames.back();
    Func = F->Func;
    const ThreadedCode *TC = Func->TCode;
    if (WISP_UNLIKELY(!TC))
      return false;
    uint32_t Idx = TC->unitIndexAt(F->Ip);
    if (WISP_UNLIKELY(Idx == ThreadedCode::NoUnit))
      return false;
    // A frame resuming EXACTLY at a loop-header fuel gate already paid the
    // charge for this arrival (a deopting JIT frame charged at the header
    // FuelCheck; a probe pause charged at the gate before firing): skip
    // it. Resumes that reach the gate non-exactly (through the elided loop
    // opcode's ip) keep it — that arrival has not been charged yet.
    if (WISP_UNLIKELY(TOp(TC->Units[Idx].Op) == TOp::FuelGate &&
                      TC->Units[Idx].BcIp == F->Ip))
      ++Idx;
    Units = TC->Units.data();
    Cases = TC->Cases.data();
    U = Units + Idx;
    SpAbs = F->Sp;
    Vfp = F->Vfp;
    LocalBase = Vfp;
    HasProbes = !Func->ProbeBits.empty();
    MemData = Inst->HasMemory ? Inst->Memory.data() : nullptr;
    MemSize = Inst->HasMemory ? Inst->Memory.byteSize() : 0;
    return true;
  };

  // Takes a pre-resolved branch. Returns 0 to continue at the (updated)
  // unit, 1 when the frame tiered up (yield to the dispatcher), 2 when a
  // rejected tier-up left a frame this tier cannot resume, 3 when a
  // governance check trapped at the branch target.
  auto takeBr = [&](uint32_t TargetUnit, uint32_t DstBase, uint32_t VC,
                    uint64_t IpFlag) -> int {
    uint32_t SrcBase = SpAbs - VC;
    uint32_t Dst = Vfp + DstBase;
    if (SrcBase != Dst && VC) {
      memmove(S + Dst, S + SrcBase, size_t(VC) * 8);
      if (Tg)
        memmove(Tg + Dst, Tg + SrcBase, VC);
    }
    SpAbs = Dst + VC;
    U = Units + TargetUnit;
    // Governance charge: one fuel unit per taken backedge, BEFORE the
    // tier-up hook (mirrors the switch interpreter's takeBranch) — an OSR
    // entry placed after the compiled header check must not double-charge
    // the transition iteration. Backward targets resolve past the header's
    // fuel gate, so this is the only charge for the arrival.
    if (WISP_UNLIKELY((IpFlag >> 32) != 0 && T.Governed)) {
      TrapReason R = T.governCheck();
      if (WISP_UNLIKELY(R != TrapReason::None)) {
        F->Ip = uint32_t(IpFlag);
        F->Stp = U->Stp;
        F->Sp = SpAbs;
        T.setTrap(R, uint32_t(IpFlag));
        return 3; // Trapped.
      }
    }
    if (WISP_UNLIKELY((IpFlag >> 32) != 0) && T.TierUpThreshold) {
      if (++Func->HotCount == T.TierUpThreshold && T.Hooks) {
        F->Ip = uint32_t(IpFlag);
        F->Stp = U->Stp;
        F->Sp = SpAbs;
        if (T.Hooks->onLoopBackedge(T, Func, uint32_t(IpFlag)))
          return 1; // Frame tiered up; yield to the dispatcher.
        if (!restore())
          return 2;
      }
    }
    return 0;
  };

  // A probed unit was reached: write the frame back, fire, charge the
  // shared flat probe cost and re-read the frame (the probe may have
  // re-predecoded the function). Returns false on a resume this tier
  // cannot express.
  auto probePause = [&]() -> bool {
    F->Ip = U->BcIp;
    F->Stp = U->Stp;
    F->Sp = SpAbs;
    if (T.Hooks)
      T.Hooks->fireProbes(T, Func, U->BcIp);
    T.InterpSteps += Thread::ProbeDispatchSteps;
    return restore();
  };

  if (!restore())
    return runInterpreter(T, EntryDepth);

#define TRAP(Reason)                                                           \
  do {                                                                         \
    F->Ip = U->BcIp;                                                           \
    F->Stp = U->Stp;                                                           \
    F->Sp = SpAbs;                                                             \
    T.setTrap(Reason, U->BcIp);                                                \
    return RunSignal::Trapped;                                                 \
  } while (0)

  // --- Stack helpers (identical contract to the switch interpreter) ---
#define PUSH(BitsV, Ty)                                                        \
  do {                                                                         \
    S[SpAbs] = (BitsV);                                                        \
    if (Tg)                                                                    \
      Tg[SpAbs] = uint8_t(ValType::Ty);                                        \
    ++SpAbs;                                                                   \
  } while (0)
#define TOP() S[SpAbs - 1]
#define POP() S[--SpAbs]

#define BIN_INPLACE(Expr)                                                      \
  do {                                                                         \
    uint64_t B = S[SpAbs - 1];                                                 \
    uint64_t A = S[SpAbs - 2];                                                 \
    (void)A;                                                                   \
    (void)B;                                                                   \
    S[SpAbs - 2] = (Expr);                                                     \
    --SpAbs;                                                                   \
  } while (0)
#define BIN_RETAG(Expr, Ty)                                                    \
  do {                                                                         \
    uint64_t B = S[SpAbs - 1];                                                 \
    uint64_t A = S[SpAbs - 2];                                                 \
    (void)A;                                                                   \
    (void)B;                                                                   \
    S[SpAbs - 2] = (Expr);                                                     \
    if (Tg)                                                                    \
      Tg[SpAbs - 2] = uint8_t(ValType::Ty);                                    \
    --SpAbs;                                                                   \
  } while (0)
#define UN_INPLACE(Expr)                                                       \
  do {                                                                         \
    uint64_t A = S[SpAbs - 1];                                                 \
    (void)A;                                                                   \
    S[SpAbs - 1] = (Expr);                                                     \
  } while (0)
#define UN_RETAG(Expr, Ty)                                                     \
  do {                                                                         \
    uint64_t A = S[SpAbs - 1];                                                 \
    (void)A;                                                                   \
    S[SpAbs - 1] = (Expr);                                                     \
    if (Tg)                                                                    \
      Tg[SpAbs - 1] = uint8_t(ValType::Ty);                                    \
  } while (0)

  // Operand views.
#define AI32 int32_t(uint32_t(A))
#define BI32 int32_t(uint32_t(B))
#define AU32 uint32_t(A)
#define BU32 uint32_t(B)
#define AI64 int64_t(A)
#define BI64 int64_t(B)
#define AF32 bitsToF32(uint32_t(A))
#define BF32 bitsToF32(uint32_t(B))
#define AF64 bitsToF64(A)
#define BF64 bitsToF64(B)

  // Memory access with the pre-decoded offset (no LEB work on this tier).
#define LOAD_OP(CType, Read, Ty)                                               \
  do {                                                                         \
    uint64_t EA = uint64_t(uint32_t(TOP())) + U->A;                            \
    if (WISP_UNLIKELY(EA + sizeof(CType) > MemSize))                           \
      TRAP(TrapReason::MemOutOfBounds);                                        \
    CType V;                                                                   \
    memcpy(&V, MemData + EA, sizeof(CType));                                   \
    UN_RETAG(Read, Ty);                                                        \
  } while (0)

#define STORE_OP(CType, ValExpr)                                               \
  do {                                                                         \
    uint64_t Raw = POP();                                                      \
    (void)Raw;                                                                 \
    uint64_t EA = uint64_t(uint32_t(POP())) + U->A;                            \
    if (WISP_UNLIKELY(EA + sizeof(CType) > MemSize))                           \
      TRAP(TrapReason::MemOutOfBounds);                                        \
    CType V = (ValExpr);                                                       \
    memcpy(MemData + EA, &V, sizeof(CType));                                   \
    Inst->Memory.noteWrite(EA + sizeof(CType));                                \
  } while (0)

  // Branch glue: consume a takeBr result at handler top level.
#define TAKE_BRANCH(Target, DstBase, VC, IpFlag)                               \
  {                                                                            \
    int BrSig = takeBr((Target), (DstBase), (VC), (IpFlag));                   \
    if (WISP_UNLIKELY(BrSig)) {                                                \
      if (BrSig == 1)                                                          \
        return RunSignal::SwitchTier;                                          \
      if (BrSig == 3)                                                          \
        return RunSignal::Trapped;                                             \
      return runInterpreter(T, EntryDepth);                                    \
    }                                                                          \
  }                                                                            \
  NEXT_AT()

#if WISP_DISPATCH_GOTO

  // Token-threaded dispatch: the IR unit holds an index into this table of
  // handler addresses; every handler ends in its own indirect jump, which
  // branch predictors exploit far better than one shared switch jump.
  static const void *HandlerTable[] = {
#define WISP_TOP_ADDR(Name) &&H_##Name,
      WISP_SPECIAL_TOPS(WISP_TOP_ADDR)
#undef WISP_TOP_ADDR
#define WISP_OP(Name, ...) &&H_##Name,
#define WISP_OP_FC(Name, ...) &&H_##Name,
#define WISP_FUSE_BINOP(Name, Expr, Ty)                                        \
  &&H_##Name, &&H_GetGet##Name, &&H_GetConst##Name,
#define WISP_FUSE_CMPOP(Name, Cond)                                            \
  &&H_##Name, &&H_GetGet##Name, &&H_GetConst##Name, &&H_##Name##ThenBr,        \
      &&H_GetGet##Name##ThenBr,
#include "interp/handlers.inc"
  };
  static_assert(sizeof(HandlerTable) / sizeof(void *) == size_t(TOp::Count),
                "handler table out of sync with TOp");

  // A FuelGate shares its BcIp with the real header unit that follows it;
  // the probe must fire once, on the real unit, or a probed loop header
  // would pause twice per arrival.
#define DISPATCH()                                                             \
  do {                                                                         \
    ++T.ThreadedSteps;                                                         \
    if (WISP_UNLIKELY(HasProbes) && TOp(U->Op) != TOp::FuelGate &&             \
        Func->probedAt(U->BcIp)) {                                             \
      if (!probePause())                                                       \
        return runInterpreter(T, EntryDepth);                                  \
    }                                                                          \
    goto *HandlerTable[U->Op];                                                 \
  } while (0)
#define OP(Name) H_##Name:
#define NEXT_SEQ()                                                             \
  do {                                                                         \
    ++U;                                                                       \
    DISPATCH();                                                                \
  } while (0)
#define NEXT_AT() DISPATCH()

  DISPATCH();

#else // !WISP_DISPATCH_GOTO

  // Portable fallback: the same handler bodies dispatched by a switch over
  // the handler token (WISP_THREADED=OFF builds and non-GNU compilers).
#define OP(Name) case TOp::Name:
#define NEXT_SEQ()                                                             \
  {                                                                            \
    ++U;                                                                       \
    continue;                                                                  \
  }
#define NEXT_AT() continue

  for (;;) {
    ++T.ThreadedSteps;
    if (WISP_UNLIKELY(HasProbes) && TOp(U->Op) != TOp::FuelGate &&
        Func->probedAt(U->BcIp)) {
      if (!probePause())
        return runInterpreter(T, EntryDepth);
    }
    switch (TOp(U->Op)) {

#endif // WISP_DISPATCH_GOTO

      OP(Unreachable)
      TRAP(TrapReason::Unreachable);

      OP(Nop)
      NEXT_SEQ();

      OP(Return) {
        uint32_t NRes = uint32_t(Func->Type->Results.size());
        uint32_t Dst = Vfp;
        uint32_t Src = SpAbs - NRes;
        if (Src != Dst && NRes) {
          memmove(S + Dst, S + Src, size_t(NRes) * 8);
          if (Tg)
            memmove(Tg + Dst, Tg + Src, NRes);
        }
        T.Frames.pop_back();
        if (T.Frames.size() < EntryDepth)
          return RunSignal::Done;
        T.Frames.back().Sp = Dst + NRes;
        if (T.Frames.back().Kind == FrameKind::Jit)
          return RunSignal::SwitchTier;
        if (!restore())
          return runInterpreter(T, EntryDepth);
        NEXT_AT();
      }

      OP(Br)
      TAKE_BRANCH(U->A, U->Aux, U->ValCount, U->B);

      OP(BrIf) {
        uint32_t Cond = uint32_t(POP());
        if (Cond) {
          TAKE_BRANCH(U->A, U->Aux, U->ValCount, U->B);
        }
      }
      NEXT_SEQ();

      OP(BrTable) {
        uint32_t Idx = uint32_t(POP());
        uint32_t Sel = Idx < U->X ? Idx : U->X;
        const BrCase &C = Cases[U->A + Sel];
        TAKE_BRANCH(C.TargetUnit, C.DstBase, C.ValCount, C.IpFlag);
      }

      OP(IfFalse) {
        uint32_t Cond = uint32_t(POP());
        if (!Cond) {
          TAKE_BRANCH(U->A, U->Aux, U->ValCount, U->B);
        }
      }
      NEXT_SEQ();

      OP(Call) {
        FuncInstance *Callee = Inst->func(U->A);
        uint32_t NArgs = uint32_t(Callee->Type->Params.size());
        uint32_t ArgBase = SpAbs - NArgs;
        // Write the resume point (the next unit) back before transferring.
        // When the next unit is a loop-header fuel gate, resume at the
        // elided loop opcode's ip instead of the gate's header ip: the
        // return has not charged this loop entry yet, and an exact-match
        // resume would skip the gate (see restore()).
        F->Ip = TOp(U[1].Op) == TOp::FuelGate ? U[1].A : U[1].BcIp;
        F->Stp = U[1].Stp;
        F->Sp = SpAbs;
        if (Callee->Host) {
          if (!callHostFunc(T, Callee, ArgBase, U->BcIp))
            return RunSignal::Trapped;
          SpAbs = ArgBase + uint32_t(Callee->Type->Results.size());
          F->Sp = SpAbs;
          // The host may have attached probes (re-predecoding this body)
          // or grown memory; re-read everything.
          if (!restore())
            return runInterpreter(T, EntryDepth);
          NEXT_AT();
        }
        if (WISP_UNLIKELY(T.TierUpThreshold) && !Callee->UseJit) {
          Callee->HotCount += 8;
          if (Callee->HotCount >= T.TierUpThreshold && T.Hooks)
            T.Hooks->onFuncHot(T, Callee);
        }
        if (!pushWasmFrame(T, Callee, ArgBase))
          return RunSignal::Trapped;
        if (T.Frames.back().Kind == FrameKind::Jit)
          return RunSignal::SwitchTier;
        if (!restore())
          return runInterpreter(T, EntryDepth);
        NEXT_AT();
      }

      OP(CallIndirect) {
        uint32_t EIdx = uint32_t(POP());
        Table &Tab = Inst->Tables[U->Aux];
        if (EIdx >= Tab.Elems.size())
          TRAP(TrapReason::TableOutOfBounds);
        uint64_t Bits = Tab.Elems[EIdx];
        if (Bits == 0)
          TRAP(TrapReason::NullFuncRef);
        FuncInstance *Callee = Inst->func(uint32_t(Bits - 1));
        if (!(*Callee->Type == Inst->M->Types[U->A]))
          TRAP(TrapReason::IndirectCallTypeMismatch);
        uint32_t NArgs = uint32_t(Callee->Type->Params.size());
        uint32_t ArgBase = SpAbs - NArgs;
        F->Ip = TOp(U[1].Op) == TOp::FuelGate ? U[1].A : U[1].BcIp;
        F->Stp = U[1].Stp;
        F->Sp = ArgBase; // Args are consumed by the callee.
        if (Callee->Host) {
          if (!callHostFunc(T, Callee, ArgBase, U->BcIp))
            return RunSignal::Trapped;
          SpAbs = ArgBase + uint32_t(Callee->Type->Results.size());
          F->Sp = SpAbs;
          if (!restore())
            return runInterpreter(T, EntryDepth);
          NEXT_AT();
        }
        if (!pushWasmFrame(T, Callee, ArgBase))
          return RunSignal::Trapped;
        if (T.Frames.back().Kind == FrameKind::Jit)
          return RunSignal::SwitchTier;
        if (!restore())
          return runInterpreter(T, EntryDepth);
        NEXT_AT();
      }

      OP(Drop)
      --SpAbs;
      NEXT_SEQ();

      OP(Select) {
        uint32_t Cond = uint32_t(POP());
        if (!Cond) {
          S[SpAbs - 2] = S[SpAbs - 1];
          if (Tg)
            Tg[SpAbs - 2] = Tg[SpAbs - 1];
        }
        --SpAbs;
      }
      NEXT_SEQ();

      OP(LocalGet) {
        S[SpAbs] = S[LocalBase + U->A];
        if (Tg)
          Tg[SpAbs] = Tg[LocalBase + U->A];
        ++SpAbs;
      }
      NEXT_SEQ();

      OP(LocalSet)
      S[LocalBase + U->A] = POP();
      NEXT_SEQ();

      OP(LocalTee)
      S[LocalBase + U->A] = TOP();
      NEXT_SEQ();

      OP(GlobalGet) {
        const Global &G = Inst->Globals[U->A];
        S[SpAbs] = G.Bits;
        if (Tg)
          Tg[SpAbs] = uint8_t(G.Type);
        ++SpAbs;
      }
      NEXT_SEQ();

      OP(GlobalSet)
      Inst->Globals[U->A].Bits = POP();
      NEXT_SEQ();

      OP(MemorySize)
      PUSH(Inst->Memory.pages(), I32);
      NEXT_SEQ();

      OP(MemoryGrow) {
        uint32_t Delta = uint32_t(TOP());
        int64_t Old = Inst->Memory.grow(Delta);
        S[SpAbs - 1] = uint64_t(uint32_t(Old));
        MemData = Inst->Memory.data();
        MemSize = Inst->Memory.byteSize();
      }
      NEXT_SEQ();

      OP(Const) {
        // i32/i64/f32/f64.const, ref.null and ref.func all pre-decode to
        // one immediate-push unit (bits + tag).
        S[SpAbs] = U->B;
        if (Tg)
          Tg[SpAbs] = uint8_t(U->Aux);
        ++SpAbs;
      }
      NEXT_SEQ();

      OP(MemoryCopy) {
        uint64_t Len = uint32_t(POP());
        uint64_t Src = uint32_t(POP());
        uint64_t Dst = uint32_t(POP());
        if (Src + Len > MemSize || Dst + Len > MemSize)
          TRAP(TrapReason::MemOutOfBounds);
        memmove(MemData + Dst, MemData + Src, size_t(Len));
        Inst->Memory.noteWrite(Dst + Len);
      }
      NEXT_SEQ();

      OP(MemoryFill) {
        uint64_t Len = uint32_t(POP());
        uint32_t Val = uint32_t(POP());
        uint64_t Dst = uint32_t(POP());
        if (Dst + Len > MemSize)
          TRAP(TrapReason::MemOutOfBounds);
        memset(MemData + Dst, int(Val & 0xff), size_t(Len));
        Inst->Memory.noteWrite(Dst + Len);
      }
      NEXT_SEQ();

      OP(SetGet) {
        // Fused local.set A; local.get Aux (tee-shaped when A == Aux).
        S[LocalBase + U->A] = S[--SpAbs];
        S[SpAbs] = S[LocalBase + U->Aux];
        if (Tg)
          Tg[SpAbs] = Tg[LocalBase + U->Aux];
        ++SpAbs;
      }
      NEXT_SEQ();

      OP(FuelGate) {
        // Loop-entry fallthrough charge (taken backedges charge in takeBr
        // and resolve past this unit). Trap ip is the header ip — the same
        // coordinate every other tier reports for fuel exhaustion here.
        if (WISP_UNLIKELY(T.Governed)) {
          TrapReason R = T.governCheck();
          if (WISP_UNLIKELY(R != TrapReason::None))
            TRAP(R);
        }
      }
      NEXT_SEQ();

      // Shared simple ops and superinstructions, generated from the same
      // handler list the switch interpreter expands. Each fusible operator
      // contributes its plain form plus the fused operand/branch forms
      // from ONE expression, so the variants cannot drift.
#define WISP_OP(Name, ...)                                                     \
  OP(Name) { __VA_ARGS__; }                                                    \
  NEXT_SEQ();
#define WISP_OP_FC(Name, ...)                                                  \
  OP(Name) { __VA_ARGS__; }                                                    \
  NEXT_SEQ();
#define WISP_FUSE_BINOP(Name, Expr, Ty)                                        \
  OP(Name) { BIN_RETAG(Expr, Ty); }                                            \
  NEXT_SEQ();                                                                  \
  OP(GetGet##Name) {                                                           \
    uint64_t A = S[LocalBase + U->A];                                          \
    uint64_t B = S[LocalBase + U->Aux];                                        \
    (void)A;                                                                   \
    (void)B;                                                                   \
    S[SpAbs] = (Expr);                                                         \
    if (Tg)                                                                    \
      Tg[SpAbs] = uint8_t(ValType::Ty);                                        \
    ++SpAbs;                                                                   \
  }                                                                            \
  NEXT_SEQ();                                                                  \
  OP(GetConst##Name) {                                                         \
    uint64_t A = S[LocalBase + U->A];                                          \
    uint64_t B = U->B;                                                         \
    (void)A;                                                                   \
    (void)B;                                                                   \
    S[SpAbs] = (Expr);                                                         \
    if (Tg)                                                                    \
      Tg[SpAbs] = uint8_t(ValType::Ty);                                        \
    ++SpAbs;                                                                   \
  }                                                                            \
  NEXT_SEQ();
#define WISP_FUSE_CMPOP(Name, Cond)                                            \
  WISP_FUSE_BINOP(Name, uint64_t(Cond), I32)                                   \
  OP(Name##ThenBr) {                                                           \
    uint64_t B = S[SpAbs - 1];                                                 \
    uint64_t A = S[SpAbs - 2];                                                 \
    SpAbs -= 2;                                                                \
    (void)A;                                                                   \
    (void)B;                                                                   \
    if (Cond) {                                                                \
      TAKE_BRANCH(U->A, U->Aux, U->ValCount, U->B);                            \
    }                                                                          \
  }                                                                            \
  NEXT_SEQ();                                                                  \
  OP(GetGet##Name##ThenBr) {                                                   \
    uint64_t A = S[LocalBase + (U->X & 0xffff)];                               \
    uint64_t B = S[LocalBase + (U->X >> 16)];                                  \
    (void)A;                                                                   \
    (void)B;                                                                   \
    if (Cond) {                                                                \
      TAKE_BRANCH(U->A, U->Aux, U->ValCount, U->B);                            \
    }                                                                          \
  }                                                                            \
  NEXT_SEQ();
#include "interp/handlers.inc"

#if !WISP_DISPATCH_GOTO
    case TOp::Count:
      break;
    }
    assert(false && "invalid threaded opcode");
    return RunSignal::Trapped;
  }
#endif
}
