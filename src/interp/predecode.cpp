//===- interp/predecode.cpp - threaded-IR pre-decoder -----------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Three passes over a validated body:
//
//   1. Linear decode: one proto-unit per opcode with immediates LEB-decoded
//      and widened, the side-table position tracked per opcode, branch
//      sites annotated with their side-table entry index, and branch-target
//      /probe flags attached.
//   2. Emission with superinstruction selection: structural no-ops are
//      elided (kept only when probed), and the hot patterns
//      local.get+local.get+<cmp>+br_if, local.get+local.get+<binop>,
//      local.get+<const>+<binop>, <cmp>+br_if and local.set+local.get are
//      greedily fused when no interior opcode is a branch target or probed.
//   3. Branch resolution: side-table entries are rewritten as IR-unit
//      targets with precomputed destination slot bases, so taking a branch
//      at run time touches no STP bookkeeping at all.
//
//===----------------------------------------------------------------------===//

#include "interp/predecode.h"

#include "wasm/codereader.h"

#include <algorithm>

using namespace wisp;

namespace {

/// Maps a shared simple opcode to its threaded handler token.
bool simpleTop(Opcode Op, TOp *Out) {
  switch (Op) {
#define WISP_OP(Name, ...)                                                     \
  case Opcode::Name:                                                           \
    *Out = TOp::Name;                                                          \
    return true;
#define WISP_OP_FC(Name, ...)                                                  \
  case Opcode::Name:                                                           \
    *Out = TOp::Name;                                                          \
    return true;
#include "interp/handlers.inc"
  default:
    return false;
  }
}

/// Binary operators (including comparisons) eligible for local/const
/// operand fusion.
bool fusibleBinop(Opcode Op, TOp *GetGet, TOp *GetConst) {
  switch (Op) {
#define WISP_FUSE_BINOP(Name, Expr, Ty)                                        \
  case Opcode::Name:                                                           \
    *GetGet = TOp::GetGet##Name;                                               \
    *GetConst = TOp::GetConst##Name;                                           \
    return true;
#define WISP_FUSE_CMPOP(Name, Cond) WISP_FUSE_BINOP(Name, , )
#include "interp/handlers.inc"
  default:
    return false;
  }
}

/// Comparisons eligible for cmp+br_if fusion.
bool fusibleCmp(Opcode Op, TOp *ThenBr, TOp *GetGetThenBr) {
  switch (Op) {
#define WISP_FUSE_CMPOP(Name, Cond)                                            \
  case Opcode::Name:                                                           \
    *ThenBr = TOp::Name##ThenBr;                                               \
    *GetGetThenBr = TOp::GetGet##Name##ThenBr;                                 \
    return true;
#include "interp/handlers.inc"
  default:
    return false;
  }
}

/// One decoded source opcode (pass-1 output).
struct Proto {
  uint32_t BcIp = 0;
  uint32_t Stp = 0;
  Opcode Op = Opcode::Nop;
  TOp T = TOp::Nop;
  uint32_t A = 0;
  uint32_t Aux = 0;
  uint64_t B = 0;
  uint32_t EntryIdx = 0; ///< Side-table entry index (branch sites).
  uint32_t NumCases = 0; ///< br_table: non-default case count.
  bool IsBranch = false;
  bool Omit = false; ///< Structural no-op; elided unless probed.
  bool IsTarget = false;
  bool Probed = false;
  bool ConstNumeric = false; ///< Numeric const, eligible as fused operand.
};

/// A branch site awaiting target resolution (pass-3 input).
struct PendingBr {
  uint32_t UnitIdx = 0;
  uint32_t EntryIdx = 0;
  uint32_t BrOpIp = 0; ///< Ip of the branching opcode (backward test).
  uint32_t NumCases = 0;
  bool IsTable = false;
};

} // namespace

uint32_t ThreadedCode::unitIndexAt(uint32_t BcIp) const {
  auto It = std::lower_bound(
      Units.begin(), Units.end(), BcIp,
      [](const IrUnit &U, uint32_t Ip) { return U.BcIp < Ip; });
  if (It == Units.end())
    return NoUnit;
  if (It->BcIp == BcIp)
    return uint32_t(It - Units.begin());
  // Non-exact resume: fine if the gap holds only elided no-ops, illegal
  // inside a fused superinstruction (the caller falls back to the switch
  // interpreter, which can resume at any opcode).
  auto Sp = std::upper_bound(FusedSpans.begin(), FusedSpans.end(),
                             std::make_pair(BcIp, ~uint32_t(0)));
  if (Sp != FusedSpans.begin()) {
    --Sp;
    if (BcIp >= Sp->first && BcIp < Sp->second)
      return NoUnit;
  }
  return uint32_t(It - Units.begin());
}

std::unique_ptr<ThreadedCode> wisp::predecodeFunction(const Module &M,
                                                      const FuncDecl &D,
                                                      const FuncInstance *FI,
                                                      bool EnableFusion,
                                                      bool EmitFuelGates) {
  auto TC = std::make_unique<ThreadedCode>();
  const uint32_t Body0 = D.BodyStart;

  // Branch-target map: fused interiors and elision must respect labels.
  std::vector<bool> Target(D.BodyEnd - D.BodyStart, false);
  for (const SideTableEntry &E : D.Table.Entries)
    if (E.TargetIp >= Body0 && E.TargetIp < D.BodyEnd)
      Target[E.TargetIp - Body0] = true;

  // --- Pass 1: linear decode ---
  std::vector<Proto> Ps;
  CodeReader R(M.Bytes.data(), D.BodyStart, D.BodyEnd);
  uint32_t CurStp = 0;
  while (!R.atEnd()) {
    Proto P;
    P.BcIp = uint32_t(R.pc());
    P.Stp = CurStp;
    Opcode Op = R.readOpcode();
    P.Op = Op;
    P.IsTarget = Target[P.BcIp - Body0];
    P.Probed = FI && FI->probedAt(P.BcIp);
    switch (Op) {
    case Opcode::Unreachable:
      P.T = TOp::Unreachable;
      break;
    case Opcode::Nop:
      P.Omit = true;
      break;
    case Opcode::Block:
    case Opcode::Loop:
      R.readBlockType();
      P.Omit = true;
      break;
    case Opcode::End:
      if (R.pc() >= D.BodyEnd)
        P.T = TOp::Return; // Function-terminating end.
      else
        P.Omit = true;
      break;
    case Opcode::If:
      R.readBlockType();
      P.T = TOp::IfFalse;
      P.IsBranch = true;
      P.EntryIdx = CurStp++;
      break;
    case Opcode::Else: // Fallthrough from the then-branch: jump to end.
      P.T = TOp::Br;
      P.IsBranch = true;
      P.EntryIdx = CurStp++;
      break;
    case Opcode::Br:
      R.readU32();
      P.T = TOp::Br;
      P.IsBranch = true;
      P.EntryIdx = CurStp++;
      break;
    case Opcode::BrIf:
      R.readU32();
      P.T = TOp::BrIf;
      P.IsBranch = true;
      P.EntryIdx = CurStp++;
      break;
    case Opcode::BrTable: {
      uint32_t N = R.readU32();
      for (uint32_t I = 0; I <= N; ++I)
        R.readU32();
      P.T = TOp::BrTable;
      P.IsBranch = true;
      P.EntryIdx = CurStp;
      P.NumCases = N;
      CurStp += N + 1;
      break;
    }
    case Opcode::Return:
      P.T = TOp::Return;
      break;
    case Opcode::Call:
      P.A = R.readU32();
      P.T = TOp::Call;
      break;
    case Opcode::CallIndirect:
      P.A = R.readU32();
      P.Aux = R.readU32();
      P.T = TOp::CallIndirect;
      break;
    case Opcode::Drop:
      P.T = TOp::Drop;
      break;
    case Opcode::Select:
      P.T = TOp::Select;
      break;
    case Opcode::SelectT: {
      uint32_t N = R.readU32();
      for (uint32_t I = 0; I < N; ++I)
        R.readByte();
      P.T = TOp::Select;
      break;
    }
    case Opcode::LocalGet:
      P.A = R.readU32();
      P.T = TOp::LocalGet;
      break;
    case Opcode::LocalSet:
      P.A = R.readU32();
      P.T = TOp::LocalSet;
      break;
    case Opcode::LocalTee:
      P.A = R.readU32();
      P.T = TOp::LocalTee;
      break;
    case Opcode::GlobalGet:
      P.A = R.readU32();
      P.T = TOp::GlobalGet;
      break;
    case Opcode::GlobalSet:
      P.A = R.readU32();
      P.T = TOp::GlobalSet;
      break;
    case Opcode::MemorySize:
      R.readByte();
      P.T = TOp::MemorySize;
      break;
    case Opcode::MemoryGrow:
      R.readByte();
      P.T = TOp::MemoryGrow;
      break;
    case Opcode::I32Const:
      P.B = uint64_t(uint32_t(R.readS32()));
      P.Aux = uint32_t(ValType::I32);
      P.T = TOp::Const;
      P.ConstNumeric = true;
      break;
    case Opcode::I64Const:
      P.B = uint64_t(R.readS64());
      P.Aux = uint32_t(ValType::I64);
      P.T = TOp::Const;
      P.ConstNumeric = true;
      break;
    case Opcode::F32Const:
      P.B = R.readF32Bits();
      P.Aux = uint32_t(ValType::F32);
      P.T = TOp::Const;
      P.ConstNumeric = true;
      break;
    case Opcode::F64Const:
      P.B = R.readF64Bits();
      P.Aux = uint32_t(ValType::F64);
      P.T = TOp::Const;
      P.ConstNumeric = true;
      break;
    case Opcode::RefNull: {
      uint8_t HeapTy = R.readByte();
      P.B = 0;
      P.Aux =
          uint32_t(HeapTy == 0x70 ? ValType::FuncRef : ValType::ExternRef);
      P.T = TOp::Const;
      break;
    }
    case Opcode::RefFunc:
      P.B = uint64_t(R.readU32()) + 1;
      P.Aux = uint32_t(ValType::FuncRef);
      P.T = TOp::Const;
      break;
    case Opcode::MemoryCopy:
      R.readByte();
      R.readByte();
      P.T = TOp::MemoryCopy;
      break;
    case Opcode::MemoryFill:
      R.readByte();
      P.T = TOp::MemoryFill;
      break;
    default: {
      bool Known = simpleTop(Op, &P.T);
      assert(Known && "unhandled opcode in predecode");
      (void)Known;
      if (opInfo(Op).Imm == ImmKind::MemArg)
        P.A = R.readMemArg().Offset; // Alignment hint is discarded.
      break;
    }
    }
    Ps.push_back(P);
    if (EmitFuelGates && Op == Opcode::Loop) {
      // Governed engines: plant a fuel gate at the loop header ip (first
      // body instruction). It shares the header's BcIp/Stp so its trap
      // site matches the switch interpreter's loop-entry charge exactly.
      // IsTarget keeps fusion lookahead from absorbing it.
      Proto G;
      G.BcIp = uint32_t(R.pc());
      G.Stp = CurStp;
      G.T = TOp::FuelGate;
      G.IsTarget = true;
      // A = the elided loop opcode's ip: call handlers resume a caller at
      // this coordinate (instead of the gate's own ip) so the gate re-runs
      // on return, exactly as the switch interpreter re-executes the loop
      // entry it resumes at.
      G.A = P.BcIp;
      Ps.push_back(G);
    }
  }
  assert(R.ok() && "predecode ran off validated code");

  // --- Pass 2: emission with superinstruction selection ---
  std::vector<PendingBr> Pend;
  // End ip of proto J's encoding (fused spans cover whole constituents).
  auto endIp = [&](size_t J) {
    return J + 1 < Ps.size() ? Ps[J + 1].BcIp : D.BodyEnd;
  };
  // Interior constituents must exist, be adjacent (no elided op between),
  // and carry neither a label nor a probe.
  auto fusable = [&](size_t J) {
    return J < Ps.size() && !Ps[J].Omit && !Ps[J].IsTarget && !Ps[J].Probed;
  };
  auto pendBranch = [&](const Proto &Site) {
    Pend.push_back({uint32_t(TC->Units.size()), Site.EntryIdx, Site.BcIp,
                    Site.NumCases, Site.T == TOp::BrTable});
  };
  size_t I = 0;
  while (I < Ps.size()) {
    const Proto &P = Ps[I];
    if (P.Omit && !P.Probed) {
      ++I; // Elide the structural no-op entirely.
      continue;
    }
    IrUnit U;
    U.BcIp = P.BcIp;
    U.Stp = P.Stp;
    if (EnableFusion && !P.Omit) {
      TOp GetGet, GetConst, ThenBr, GetGetThenBr;
      size_t Len = 0;
      if (P.T == TOp::LocalGet && fusable(I + 1) &&
          Ps[I + 1].T == TOp::LocalGet && fusable(I + 2)) {
        if (P.A < 0x10000 && Ps[I + 1].A < 0x10000 && fusable(I + 3) &&
            Ps[I + 3].T == TOp::BrIf &&
            fusibleCmp(Ps[I + 2].Op, &ThenBr, &GetGetThenBr)) {
          // local.get x; local.get y; <cmp>; br_if — the loop-control
          // quad — becomes a single conditional-branch unit.
          U.Op = uint16_t(GetGetThenBr);
          U.X = P.A | (Ps[I + 1].A << 16);
          pendBranch(Ps[I + 3]);
          Len = 4;
        } else if (fusibleBinop(Ps[I + 2].Op, &GetGet, &GetConst)) {
          U.Op = uint16_t(GetGet);
          U.A = P.A;
          U.Aux = Ps[I + 1].A;
          Len = 3;
        }
      }
      if (!Len && P.T == TOp::LocalGet && fusable(I + 1) &&
          Ps[I + 1].T == TOp::Const && Ps[I + 1].ConstNumeric &&
          fusable(I + 2) && fusibleBinop(Ps[I + 2].Op, &GetGet, &GetConst)) {
        U.Op = uint16_t(GetConst);
        U.A = P.A;
        U.B = Ps[I + 1].B;
        Len = 3;
      }
      if (!Len && fusable(I + 1) && Ps[I + 1].T == TOp::BrIf &&
          fusibleCmp(P.Op, &ThenBr, &GetGetThenBr)) {
        U.Op = uint16_t(ThenBr);
        pendBranch(Ps[I + 1]);
        Len = 2;
      }
      if (!Len && P.T == TOp::LocalSet && fusable(I + 1) &&
          Ps[I + 1].T == TOp::LocalGet) {
        // local.set feeding an immediate local.get (tee-shaped when the
        // indices coincide).
        U.Op = uint16_t(TOp::SetGet);
        U.A = P.A;
        U.Aux = Ps[I + 1].A;
        Len = 2;
      }
      if (Len) {
        TC->FusedSpans.push_back({P.BcIp, endIp(I + Len - 1)});
        ++TC->NumFused;
        TC->NumSources += uint32_t(Len);
        TC->Units.push_back(U);
        I += Len;
        continue;
      }
    }
    U.Op = uint16_t(P.T);
    U.A = P.A;
    U.Aux = P.Aux;
    U.B = P.B;
    if (P.IsBranch)
      pendBranch(P);
    if (P.T != TOp::FuelGate) // Gates are synthetic, not source opcodes.
      ++TC->NumSources;
    TC->Units.push_back(U);
    ++I;
  }

  // --- Pass 3: branch resolution ---
  const SideTableEntry *ST = D.Table.Entries.data();
  const uint32_t NumLocals = D.numLocalSlots();
  auto unitFor = [&](uint32_t TargetIp, bool Backward) {
    uint32_t Idx = TC->unitIndexAt(TargetIp);
    assert(Idx != ThreadedCode::NoUnit && "branch target inside fused unit");
    // Taken backedges charge fuel in the branch handler itself (before the
    // tier-up hook, mirroring the switch interpreter), so a backward branch
    // resolving exactly onto the header's fuel gate skips it. Forward
    // resolutions that land on a gate non-exactly (a branch to the elided
    // loop opcode) keep it: the switch interpreter would execute the loop
    // entry there and charge.
    if (Backward && TOp(TC->Units[Idx].Op) == TOp::FuelGate &&
        TC->Units[Idx].BcIp == TargetIp)
      ++Idx;
    return Idx;
  };
  auto ipFlag = [&](const SideTableEntry &E, uint32_t BrOpIp) {
    uint64_t Flag = E.TargetIp;
    if (E.TargetIp <= BrOpIp)
      Flag |= uint64_t(1) << 32; // Backward: tier-up candidate.
    return Flag;
  };
  for (const PendingBr &PB : Pend) {
    IrUnit &U = TC->Units[PB.UnitIdx];
    if (PB.IsTable) {
      U.A = uint32_t(TC->Cases.size());
      U.X = PB.NumCases;
      for (uint32_t K = 0; K <= PB.NumCases; ++K) {
        const SideTableEntry &E = ST[PB.EntryIdx + K];
        BrCase C;
        C.TargetUnit = unitFor(E.TargetIp, E.TargetIp <= PB.BrOpIp);
        C.DstBase = NumLocals + E.TargetHeight;
        C.ValCount = E.ValCount;
        C.IpFlag = ipFlag(E, PB.BrOpIp);
        TC->Cases.push_back(C);
      }
    } else {
      const SideTableEntry &E = ST[PB.EntryIdx];
      U.A = unitFor(E.TargetIp, E.TargetIp <= PB.BrOpIp);
      U.Aux = NumLocals + E.TargetHeight;
      assert(E.ValCount <= 0xffff && "merge arity exceeds IR field");
      U.ValCount = uint16_t(E.ValCount);
      U.B = ipFlag(E, PB.BrOpIp);
    }
  }
  return TC;
}
