//===- interp/interpreter.cpp - in-place Wasm interpreter ------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The dispatch loop decodes the original bytecode directly (immediates are
// re-decoded on every execution — the defining property of an in-place
// interpreter). Control transfers consult the side table; the interpreter
// keeps IP/STP in locals and writes them back to the frame only at
// observation points (calls, probes, traps, tier transitions).
//
//===----------------------------------------------------------------------===//

#include "interp/interpreter.h"

#include "runtime/hooks.h"
#include "runtime/numerics.h"
#include "wasm/codereader.h"

using namespace wisp;

#define WISP_UNLIKELY(x) __builtin_expect(!!(x), 0)

namespace {

/// Unchecked LEB decoders for validated code (the bytes were verified by
/// the validator, so bounds and width checks are unnecessary here).
inline uint32_t fastU32(const uint8_t *&P) {
  uint32_t B = *P++;
  if (!(B & 0x80))
    return B;
  uint32_t R = B & 0x7f;
  unsigned Shift = 7;
  do {
    B = *P++;
    R |= uint32_t(B & 0x7f) << Shift;
    Shift += 7;
  } while (B & 0x80);
  return R;
}

inline int32_t fastS32(const uint8_t *&P) {
  uint32_t B = *P++;
  if (!(B & 0x80))
    return int32_t(B << 25) >> 25; // Sign-extend from 7 bits.
  uint32_t R = B & 0x7f;
  unsigned Shift = 7;
  do {
    B = *P++;
    R |= uint32_t(B & 0x7f) << Shift;
    Shift += 7;
  } while (B & 0x80);
  if (Shift < 32 && (B & 0x40))
    R |= ~uint32_t(0) << Shift;
  return int32_t(R);
}

inline int64_t fastS64(const uint8_t *&P) {
  uint64_t R = 0;
  unsigned Shift = 0;
  uint8_t B;
  do {
    B = *P++;
    R |= uint64_t(B & 0x7f) << Shift;
    Shift += 7;
  } while (B & 0x80);
  if (Shift < 64 && (B & 0x40))
    R |= ~uint64_t(0) << Shift;
  return int64_t(R);
}

inline void skipBlockType(const uint8_t *&P) {
  // A block type is a single byte unless it is a non-negative s33 (type
  // index), which never has bit 6 set in its final byte... simply decode.
  (void)fastS64(P);
}

} // namespace

bool wisp::pushWasmFrame(Thread &T, FuncInstance *Func, uint32_t ArgBase) {
  const FuncDecl *D = Func->Decl;
  uint32_t NeedSlots = ArgBase + D->frameSlots();
  if (T.Frames.size() >= T.MaxFrames || NeedSlots > T.VS.capacity()) {
    T.setTrap(TrapReason::StackOverflow, D->BodyStart);
    return false;
  }
  Frame F;
  F.Func = Func;
  F.Vfp = ArgBase;
  F.Ip = D->BodyStart;
  F.Stp = 0;
  F.Sp = ArgBase + D->numLocalSlots();
  bool Jit = Func->UseJit && Func->Code != nullptr;
  F.Kind = Jit ? FrameKind::Jit : FrameKind::Interp;
  F.Code = Jit ? Func->Code : nullptr;
  F.Pc = 0;
  if (!Jit) {
    // Zero-initialize declared locals and their tags. (JIT prologues do
    // this themselves, typically as constants in the abstract state.)
    uint64_t *S = T.VS.slots();
    uint8_t *Tg = T.VS.tags();
    uint32_t NParams = uint32_t(Func->Type->Params.size());
    for (uint32_t I = NParams; I < D->LocalTypes.size(); ++I) {
      S[ArgBase + I] = 0;
      if (Tg)
        Tg[ArgBase + I] = uint8_t(D->LocalTypes[I]);
    }
  }
  T.Frames.push_back(F);
  return true;
}

bool wisp::callHostFunc(Thread &T, FuncInstance *Func, uint32_t ArgBase,
                        uint32_t CallerIp) {
  const FuncType &FT = *Func->Type;
  Value Args[16];
  Value Results[16];
  assert(FT.Params.size() <= 16 && FT.Results.size() <= 16 &&
         "host signature too long");
  uint64_t *S = T.VS.slots();
  for (size_t I = 0; I < FT.Params.size(); ++I)
    Args[I] = Value{S[ArgBase + I], FT.Params[I]};
  for (size_t I = 0; I < FT.Results.size(); ++I)
    Results[I] = defaultValue(FT.Results[I]);
  TrapReason R = Func->Host->Fn(*Func->Inst, Args, Results);
  if (R != TrapReason::None) {
    T.setTrap(R, CallerIp);
    return false;
  }
  uint8_t *Tg = T.VS.tags();
  S = T.VS.slots(); // The host may not resize the stack, but be safe.
  for (size_t I = 0; I < FT.Results.size(); ++I) {
    S[ArgBase + I] = Results[I].Bits;
    if (Tg)
      Tg[ArgBase + I] = uint8_t(FT.Results[I]);
  }
  return true;
}

RunSignal wisp::runInterpreter(Thread &T, size_t EntryDepth) {
  assert(!T.Frames.empty() && T.Frames.size() >= EntryDepth);
  assert(T.top().Kind == FrameKind::Interp && "top frame is not interp");

  Instance *Inst = T.Inst;
  const uint8_t *Bytes = Inst->M->Bytes.data();
  uint64_t *S = T.VS.slots();
  uint8_t *Tg = T.VS.tags();

  // Per-frame cached state.
  Frame *F = nullptr;
  FuncInstance *Func = nullptr;
  const uint8_t *P = nullptr;
  const uint8_t *BodyEndP = nullptr;
  const SideTableEntry *ST = nullptr;
  uint32_t Stp = 0;
  uint32_t SpAbs = 0;
  uint32_t Vfp = 0;
  uint32_t LocalBase = 0; // == Vfp (locals start at frame base).
  bool HasProbes = false;
  uint8_t *MemData = Inst->HasMemory ? Inst->Memory.data() : nullptr;
  uint64_t MemSize = Inst->HasMemory ? Inst->Memory.byteSize() : 0;

  auto restore = [&]() {
    F = &T.Frames.back();
    Func = F->Func;
    P = Bytes + F->Ip;
    BodyEndP = Bytes + Func->Decl->BodyEnd;
    ST = Func->Decl->Table.Entries.data();
    Stp = F->Stp;
    SpAbs = F->Sp;
    Vfp = F->Vfp;
    LocalBase = Vfp;
    HasProbes = !Func->ProbeBits.empty();
    MemData = Inst->HasMemory ? Inst->Memory.data() : nullptr;
    MemSize = Inst->HasMemory ? Inst->Memory.byteSize() : 0;
  };
  auto writeback = [&](const uint8_t *At) {
    F->Ip = uint32_t(At - Bytes);
    F->Stp = Stp;
    F->Sp = SpAbs;
  };

  restore();

  const uint8_t *OpP = P; // Offset of the current opcode (for traps).

#define TRAP(Reason)                                                           \
  do {                                                                         \
    writeback(OpP);                                                            \
    T.setTrap(Reason, uint32_t(OpP - Bytes));                                  \
    return RunSignal::Trapped;                                                 \
  } while (0)

  // --- Stack helpers (absolute slot indexing; top at SpAbs-1) ---
#define PUSH(BitsV, Ty)                                                        \
  do {                                                                         \
    S[SpAbs] = (BitsV);                                                        \
    if (Tg)                                                                    \
      Tg[SpAbs] = uint8_t(ValType::Ty);                                        \
    ++SpAbs;                                                                   \
  } while (0)
#define TOP() S[SpAbs - 1]
#define POP() S[--SpAbs]

  // In-place binary op on two same-typed operands (no tag change).
#define BIN_INPLACE(Expr)                                                      \
  do {                                                                         \
    uint64_t B = S[SpAbs - 1];                                                 \
    uint64_t A = S[SpAbs - 2];                                                 \
    (void)A;                                                                   \
    (void)B;                                                                   \
    S[SpAbs - 2] = (Expr);                                                     \
    --SpAbs;                                                                   \
  } while (0)
  // Binary op whose result type differs from the operand type.
#define BIN_RETAG(Expr, Ty)                                                    \
  do {                                                                         \
    uint64_t B = S[SpAbs - 1];                                                 \
    uint64_t A = S[SpAbs - 2];                                                 \
    (void)A;                                                                   \
    (void)B;                                                                   \
    S[SpAbs - 2] = (Expr);                                                     \
    if (Tg)                                                                    \
      Tg[SpAbs - 2] = uint8_t(ValType::Ty);                                    \
    --SpAbs;                                                                   \
  } while (0)
#define UN_INPLACE(Expr)                                                       \
  do {                                                                         \
    uint64_t A = S[SpAbs - 1];                                                 \
    (void)A;                                                                   \
    S[SpAbs - 1] = (Expr);                                                     \
  } while (0)
#define UN_RETAG(Expr, Ty)                                                     \
  do {                                                                         \
    uint64_t A = S[SpAbs - 1];                                                 \
    (void)A;                                                                   \
    S[SpAbs - 1] = (Expr);                                                     \
    if (Tg)                                                                    \
      Tg[SpAbs - 1] = uint8_t(ValType::Ty);                                    \
  } while (0)

  // Operand views.
#define AI32 int32_t(uint32_t(A))
#define BI32 int32_t(uint32_t(B))
#define AU32 uint32_t(A)
#define BU32 uint32_t(B)
#define AI64 int64_t(A)
#define BI64 int64_t(B)
#define AF32 bitsToF32(uint32_t(A))
#define BF32 bitsToF32(uint32_t(B))
#define AF64 bitsToF64(A)
#define BF64 bitsToF64(B)

  // Takes the side-table entry at Stp as a control transfer.
  auto takeBranch = [&](const SideTableEntry &E, const uint8_t *OpPtr) -> int {
    uint32_t SrcBase = SpAbs - E.ValCount;
    uint32_t DstBase = Vfp + Func->Decl->numLocalSlots() + E.TargetHeight;
    if (SrcBase != DstBase && E.ValCount) {
      memmove(S + DstBase, S + SrcBase, size_t(E.ValCount) * 8);
      if (Tg)
        memmove(Tg + DstBase, Tg + SrcBase, E.ValCount);
    }
    SpAbs = DstBase + E.ValCount;
    bool Backward = E.TargetIp <= uint32_t(OpPtr - Bytes);
    P = Bytes + E.TargetIp;
    Stp = E.TargetStp;
    if (WISP_UNLIKELY(Backward && T.TierUpThreshold)) {
      if (++Func->HotCount == T.TierUpThreshold && T.Hooks) {
        writeback(P);
        if (T.Hooks->onLoopBackedge(T, Func, E.TargetIp))
          return 1; // Frame tiered up; yield to the dispatcher.
        restore();
      }
    }
    return 0;
  };

  for (;;) {
    OpP = P;
    ++T.InterpSteps;
    if (WISP_UNLIKELY(HasProbes) && Func->probedAt(uint32_t(OpP - Bytes))) {
      writeback(OpP);
      if (T.Hooks)
        T.Hooks->fireProbes(T, Func, uint32_t(OpP - Bytes));
      // Modeled cost of the runtime probe lookup, accessor allocation and
      // callback (roughly ten bytecode-dispatch equivalents).
      T.InterpSteps += 10;
      restore();
      OpP = P;
    }
    uint8_t Op = *P++;
    switch (Op) {
    case uint8_t(Opcode::Unreachable):
      TRAP(TrapReason::Unreachable);
    case uint8_t(Opcode::Nop):
      break;
    case uint8_t(Opcode::Block):
    case uint8_t(Opcode::Loop):
      skipBlockType(P);
      break;
    case uint8_t(Opcode::If): {
      skipBlockType(P);
      uint32_t Cond = uint32_t(POP());
      if (Cond) {
        ++Stp; // Skip the false-edge entry.
      } else if (takeBranch(ST[Stp], OpP)) {
        return RunSignal::SwitchTier;
      }
      break;
    }
    case uint8_t(Opcode::Else):
      // Fallthrough from the then-branch: skip past the end.
      if (takeBranch(ST[Stp], OpP))
        return RunSignal::SwitchTier;
      break;
    case uint8_t(Opcode::End): {
      if (P != BodyEndP)
        break; // Inner end: no-op.
      // Function return.
      uint32_t NRes = uint32_t(Func->Type->Results.size());
      uint32_t Dst = Vfp;
      uint32_t Src = SpAbs - NRes;
      if (Src != Dst && NRes) {
        memmove(S + Dst, S + Src, size_t(NRes) * 8);
        if (Tg)
          memmove(Tg + Dst, Tg + Src, NRes);
      }
      T.Frames.pop_back();
      if (T.Frames.size() < EntryDepth)
        return RunSignal::Done;
      T.Frames.back().Sp = Dst + NRes;
      if (T.Frames.back().Kind == FrameKind::Jit)
        return RunSignal::SwitchTier;
      restore();
      break;
    }
    case uint8_t(Opcode::Br):
      fastU32(P);
      if (takeBranch(ST[Stp], OpP))
        return RunSignal::SwitchTier;
      break;
    case uint8_t(Opcode::BrIf): {
      fastU32(P);
      uint32_t Cond = uint32_t(POP());
      if (!Cond) {
        ++Stp;
      } else if (takeBranch(ST[Stp], OpP)) {
        return RunSignal::SwitchTier;
      }
      break;
    }
    case uint8_t(Opcode::BrTable): {
      uint32_t N = fastU32(P);
      uint32_t Idx = uint32_t(POP());
      uint32_t Sel = Idx < N ? Idx : N;
      if (takeBranch(ST[Stp + Sel], OpP))
        return RunSignal::SwitchTier;
      break;
    }
    case uint8_t(Opcode::Return): {
      uint32_t NRes = uint32_t(Func->Type->Results.size());
      uint32_t Dst = Vfp;
      uint32_t Src = SpAbs - NRes;
      if (Src != Dst && NRes) {
        memmove(S + Dst, S + Src, size_t(NRes) * 8);
        if (Tg)
          memmove(Tg + Dst, Tg + Src, NRes);
      }
      T.Frames.pop_back();
      if (T.Frames.size() < EntryDepth)
        return RunSignal::Done;
      T.Frames.back().Sp = Dst + NRes;
      if (T.Frames.back().Kind == FrameKind::Jit)
        return RunSignal::SwitchTier;
      restore();
      break;
    }

    case uint8_t(Opcode::Call): {
      uint32_t Idx = fastU32(P);
      FuncInstance *Callee = Inst->func(Idx);
      uint32_t NArgs = uint32_t(Callee->Type->Params.size());
      uint32_t ArgBase = SpAbs - NArgs;
      writeback(P);
      if (Callee->Host) {
        if (!callHostFunc(T, Callee, ArgBase, uint32_t(OpP - Bytes)))
          return RunSignal::Trapped;
        SpAbs = ArgBase + uint32_t(Callee->Type->Results.size());
        F->Sp = SpAbs;
        MemData = Inst->HasMemory ? Inst->Memory.data() : nullptr;
        MemSize = Inst->HasMemory ? Inst->Memory.byteSize() : 0;
        break;
      }
      if (WISP_UNLIKELY(T.TierUpThreshold) && !Callee->UseJit) {
        Callee->HotCount += 8;
        if (Callee->HotCount >= T.TierUpThreshold && T.Hooks)
          T.Hooks->onFuncHot(T, Callee);
      }
      if (!pushWasmFrame(T, Callee, ArgBase))
        return RunSignal::Trapped;
      if (T.Frames.back().Kind == FrameKind::Jit)
        return RunSignal::SwitchTier;
      restore();
      break;
    }

    case uint8_t(Opcode::CallIndirect): {
      uint32_t TypeIdx = fastU32(P);
      uint32_t TableIdx = fastU32(P);
      uint32_t EIdx = uint32_t(POP());
      Table &Tab = Inst->Tables[TableIdx];
      if (EIdx >= Tab.Elems.size())
        TRAP(TrapReason::TableOutOfBounds);
      uint64_t Bits = Tab.Elems[EIdx];
      if (Bits == 0)
        TRAP(TrapReason::NullFuncRef);
      FuncInstance *Callee = Inst->func(uint32_t(Bits - 1));
      if (!(*Callee->Type == Inst->M->Types[TypeIdx]))
        TRAP(TrapReason::IndirectCallTypeMismatch);
      uint32_t NArgs = uint32_t(Callee->Type->Params.size());
      uint32_t ArgBase = SpAbs - NArgs;
      writeback(P);
      F->Sp = ArgBase; // Args are consumed by the callee.
      if (Callee->Host) {
        if (!callHostFunc(T, Callee, ArgBase, uint32_t(OpP - Bytes)))
          return RunSignal::Trapped;
        SpAbs = ArgBase + uint32_t(Callee->Type->Results.size());
        F->Sp = SpAbs;
        MemData = Inst->HasMemory ? Inst->Memory.data() : nullptr;
        MemSize = Inst->HasMemory ? Inst->Memory.byteSize() : 0;
        break;
      }
      if (!pushWasmFrame(T, Callee, ArgBase))
        return RunSignal::Trapped;
      if (T.Frames.back().Kind == FrameKind::Jit)
        return RunSignal::SwitchTier;
      restore();
      break;
    }

    case uint8_t(Opcode::Drop):
      --SpAbs;
      break;
    case uint8_t(Opcode::Select): {
      uint32_t Cond = uint32_t(POP());
      if (!Cond) {
        S[SpAbs - 2] = S[SpAbs - 1];
        if (Tg)
          Tg[SpAbs - 2] = Tg[SpAbs - 1];
      }
      --SpAbs;
      break;
    }
    case uint8_t(Opcode::SelectT): {
      uint32_t N = fastU32(P);
      P += N; // Type bytes.
      uint32_t Cond = uint32_t(POP());
      if (!Cond) {
        S[SpAbs - 2] = S[SpAbs - 1];
        if (Tg)
          Tg[SpAbs - 2] = Tg[SpAbs - 1];
      }
      --SpAbs;
      break;
    }

    case uint8_t(Opcode::LocalGet): {
      uint32_t Idx = fastU32(P);
      S[SpAbs] = S[LocalBase + Idx];
      if (Tg)
        Tg[SpAbs] = Tg[LocalBase + Idx];
      ++SpAbs;
      break;
    }
    case uint8_t(Opcode::LocalSet): {
      uint32_t Idx = fastU32(P);
      S[LocalBase + Idx] = POP();
      break;
    }
    case uint8_t(Opcode::LocalTee): {
      uint32_t Idx = fastU32(P);
      S[LocalBase + Idx] = TOP();
      break;
    }
    case uint8_t(Opcode::GlobalGet): {
      uint32_t Idx = fastU32(P);
      const Global &G = Inst->Globals[Idx];
      S[SpAbs] = G.Bits;
      if (Tg)
        Tg[SpAbs] = uint8_t(G.Type);
      ++SpAbs;
      break;
    }
    case uint8_t(Opcode::GlobalSet): {
      uint32_t Idx = fastU32(P);
      Inst->Globals[Idx].Bits = POP();
      break;
    }

      // --- Memory loads ---
#define LOAD_OP(CType, Read, Ty)                                               \
  do {                                                                         \
    fastU32(P); /* align */                                                    \
    uint32_t Off = fastU32(P);                                                 \
    uint64_t EA = uint64_t(uint32_t(TOP())) + Off;                             \
    if (WISP_UNLIKELY(EA + sizeof(CType) > MemSize))                           \
      TRAP(TrapReason::MemOutOfBounds);                                        \
    CType V;                                                                   \
    memcpy(&V, MemData + EA, sizeof(CType));                                   \
    UN_RETAG(Read, Ty);                                                        \
  } while (0)

    case uint8_t(Opcode::I32Load):
      LOAD_OP(uint32_t, V, I32);
      break;
    case uint8_t(Opcode::I64Load):
      LOAD_OP(uint64_t, V, I64);
      break;
    case uint8_t(Opcode::F32Load):
      LOAD_OP(uint32_t, V, F32);
      break;
    case uint8_t(Opcode::F64Load):
      LOAD_OP(uint64_t, V, F64);
      break;
    case uint8_t(Opcode::I32Load8S):
      LOAD_OP(int8_t, uint32_t(int32_t(V)), I32);
      break;
    case uint8_t(Opcode::I32Load8U):
      LOAD_OP(uint8_t, V, I32);
      break;
    case uint8_t(Opcode::I32Load16S):
      LOAD_OP(int16_t, uint32_t(int32_t(V)), I32);
      break;
    case uint8_t(Opcode::I32Load16U):
      LOAD_OP(uint16_t, V, I32);
      break;
    case uint8_t(Opcode::I64Load8S):
      LOAD_OP(int8_t, uint64_t(int64_t(V)), I64);
      break;
    case uint8_t(Opcode::I64Load8U):
      LOAD_OP(uint8_t, V, I64);
      break;
    case uint8_t(Opcode::I64Load16S):
      LOAD_OP(int16_t, uint64_t(int64_t(V)), I64);
      break;
    case uint8_t(Opcode::I64Load16U):
      LOAD_OP(uint16_t, V, I64);
      break;
    case uint8_t(Opcode::I64Load32S):
      LOAD_OP(int32_t, uint64_t(int64_t(V)), I64);
      break;
    case uint8_t(Opcode::I64Load32U):
      LOAD_OP(uint32_t, V, I64);
      break;

      // --- Memory stores ---
#define STORE_OP(CType, ValExpr)                                               \
  do {                                                                         \
    fastU32(P); /* align */                                                    \
    uint32_t Off = fastU32(P);                                                 \
    uint64_t Raw = POP();                                                      \
    (void)Raw;                                                                 \
    uint64_t EA = uint64_t(uint32_t(POP())) + Off;                             \
    if (WISP_UNLIKELY(EA + sizeof(CType) > MemSize))                           \
      TRAP(TrapReason::MemOutOfBounds);                                        \
    CType V = (ValExpr);                                                       \
    memcpy(MemData + EA, &V, sizeof(CType));                                   \
  } while (0)

    case uint8_t(Opcode::I32Store):
      STORE_OP(uint32_t, uint32_t(Raw));
      break;
    case uint8_t(Opcode::I64Store):
      STORE_OP(uint64_t, Raw);
      break;
    case uint8_t(Opcode::F32Store):
      STORE_OP(uint32_t, uint32_t(Raw));
      break;
    case uint8_t(Opcode::F64Store):
      STORE_OP(uint64_t, Raw);
      break;
    case uint8_t(Opcode::I32Store8):
      STORE_OP(uint8_t, uint8_t(Raw));
      break;
    case uint8_t(Opcode::I32Store16):
      STORE_OP(uint16_t, uint16_t(Raw));
      break;
    case uint8_t(Opcode::I64Store8):
      STORE_OP(uint8_t, uint8_t(Raw));
      break;
    case uint8_t(Opcode::I64Store16):
      STORE_OP(uint16_t, uint16_t(Raw));
      break;
    case uint8_t(Opcode::I64Store32):
      STORE_OP(uint32_t, uint32_t(Raw));
      break;

    case uint8_t(Opcode::MemorySize):
      ++P; // memidx
      PUSH(Inst->Memory.pages(), I32);
      break;
    case uint8_t(Opcode::MemoryGrow): {
      ++P; // memidx
      uint32_t Delta = uint32_t(TOP());
      int64_t Old = Inst->Memory.grow(Delta);
      S[SpAbs - 1] = uint64_t(uint32_t(Old));
      MemData = Inst->Memory.data();
      MemSize = Inst->Memory.byteSize();
      break;
    }

    case uint8_t(Opcode::I32Const): {
      int32_t V = fastS32(P);
      PUSH(uint32_t(V), I32);
      break;
    }
    case uint8_t(Opcode::I64Const): {
      int64_t V = fastS64(P);
      PUSH(uint64_t(V), I64);
      break;
    }
    case uint8_t(Opcode::F32Const): {
      uint32_t V;
      memcpy(&V, P, 4);
      P += 4;
      PUSH(V, F32);
      break;
    }
    case uint8_t(Opcode::F64Const): {
      uint64_t V;
      memcpy(&V, P, 8);
      P += 8;
      PUSH(V, F64);
      break;
    }

      // --- i32 compare / arith ---
    case uint8_t(Opcode::I32Eqz):
      UN_INPLACE(uint32_t(A) == 0);
      break;
    case uint8_t(Opcode::I32Eq):
      BIN_INPLACE(AU32 == BU32);
      break;
    case uint8_t(Opcode::I32Ne):
      BIN_INPLACE(AU32 != BU32);
      break;
    case uint8_t(Opcode::I32LtS):
      BIN_INPLACE(AI32 < BI32);
      break;
    case uint8_t(Opcode::I32LtU):
      BIN_INPLACE(AU32 < BU32);
      break;
    case uint8_t(Opcode::I32GtS):
      BIN_INPLACE(AI32 > BI32);
      break;
    case uint8_t(Opcode::I32GtU):
      BIN_INPLACE(AU32 > BU32);
      break;
    case uint8_t(Opcode::I32LeS):
      BIN_INPLACE(AI32 <= BI32);
      break;
    case uint8_t(Opcode::I32LeU):
      BIN_INPLACE(AU32 <= BU32);
      break;
    case uint8_t(Opcode::I32GeS):
      BIN_INPLACE(AI32 >= BI32);
      break;
    case uint8_t(Opcode::I32GeU):
      BIN_INPLACE(AU32 >= BU32);
      break;

    case uint8_t(Opcode::I64Eqz):
      UN_RETAG(A == 0, I32);
      break;
    case uint8_t(Opcode::I64Eq):
      BIN_RETAG(A == B, I32);
      break;
    case uint8_t(Opcode::I64Ne):
      BIN_RETAG(A != B, I32);
      break;
    case uint8_t(Opcode::I64LtS):
      BIN_RETAG(AI64 < BI64, I32);
      break;
    case uint8_t(Opcode::I64LtU):
      BIN_RETAG(A < B, I32);
      break;
    case uint8_t(Opcode::I64GtS):
      BIN_RETAG(AI64 > BI64, I32);
      break;
    case uint8_t(Opcode::I64GtU):
      BIN_RETAG(A > B, I32);
      break;
    case uint8_t(Opcode::I64LeS):
      BIN_RETAG(AI64 <= BI64, I32);
      break;
    case uint8_t(Opcode::I64LeU):
      BIN_RETAG(A <= B, I32);
      break;
    case uint8_t(Opcode::I64GeS):
      BIN_RETAG(AI64 >= BI64, I32);
      break;
    case uint8_t(Opcode::I64GeU):
      BIN_RETAG(A >= B, I32);
      break;

    case uint8_t(Opcode::F32Eq):
      BIN_RETAG(AF32 == BF32, I32);
      break;
    case uint8_t(Opcode::F32Ne):
      BIN_RETAG(AF32 != BF32, I32);
      break;
    case uint8_t(Opcode::F32Lt):
      BIN_RETAG(AF32 < BF32, I32);
      break;
    case uint8_t(Opcode::F32Gt):
      BIN_RETAG(AF32 > BF32, I32);
      break;
    case uint8_t(Opcode::F32Le):
      BIN_RETAG(AF32 <= BF32, I32);
      break;
    case uint8_t(Opcode::F32Ge):
      BIN_RETAG(AF32 >= BF32, I32);
      break;
    case uint8_t(Opcode::F64Eq):
      BIN_RETAG(AF64 == BF64, I32);
      break;
    case uint8_t(Opcode::F64Ne):
      BIN_RETAG(AF64 != BF64, I32);
      break;
    case uint8_t(Opcode::F64Lt):
      BIN_RETAG(AF64 < BF64, I32);
      break;
    case uint8_t(Opcode::F64Gt):
      BIN_RETAG(AF64 > BF64, I32);
      break;
    case uint8_t(Opcode::F64Le):
      BIN_RETAG(AF64 <= BF64, I32);
      break;
    case uint8_t(Opcode::F64Ge):
      BIN_RETAG(AF64 >= BF64, I32);
      break;

    case uint8_t(Opcode::I32Clz):
      UN_INPLACE(clz32(AU32));
      break;
    case uint8_t(Opcode::I32Ctz):
      UN_INPLACE(ctz32(AU32));
      break;
    case uint8_t(Opcode::I32Popcnt):
      UN_INPLACE(popcnt32(AU32));
      break;
    case uint8_t(Opcode::I32Add):
      BIN_INPLACE(uint32_t(AU32 + BU32));
      break;
    case uint8_t(Opcode::I32Sub):
      BIN_INPLACE(uint32_t(AU32 - BU32));
      break;
    case uint8_t(Opcode::I32Mul):
      BIN_INPLACE(uint32_t(AU32 * BU32));
      break;
    case uint8_t(Opcode::I32DivS): {
      uint64_t B = POP(), A = POP();
      int32_t R;
      TrapReason Tr = divS32(int32_t(uint32_t(A)), int32_t(uint32_t(B)), &R);
      if (Tr != TrapReason::None)
        TRAP(Tr);
      PUSH(uint32_t(R), I32);
      break;
    }
    case uint8_t(Opcode::I32DivU): {
      uint64_t B = POP(), A = POP();
      uint32_t R;
      TrapReason Tr = divU32(uint32_t(A), uint32_t(B), &R);
      if (Tr != TrapReason::None)
        TRAP(Tr);
      PUSH(R, I32);
      break;
    }
    case uint8_t(Opcode::I32RemS): {
      uint64_t B = POP(), A = POP();
      int32_t R;
      TrapReason Tr = remS32(int32_t(uint32_t(A)), int32_t(uint32_t(B)), &R);
      if (Tr != TrapReason::None)
        TRAP(Tr);
      PUSH(uint32_t(R), I32);
      break;
    }
    case uint8_t(Opcode::I32RemU): {
      uint64_t B = POP(), A = POP();
      uint32_t R;
      TrapReason Tr = remU32(uint32_t(A), uint32_t(B), &R);
      if (Tr != TrapReason::None)
        TRAP(Tr);
      PUSH(R, I32);
      break;
    }
    case uint8_t(Opcode::I32And):
      BIN_INPLACE(AU32 & BU32);
      break;
    case uint8_t(Opcode::I32Or):
      BIN_INPLACE(AU32 | BU32);
      break;
    case uint8_t(Opcode::I32Xor):
      BIN_INPLACE(AU32 ^ BU32);
      break;
    case uint8_t(Opcode::I32Shl):
      BIN_INPLACE(shl32(AU32, BU32));
      break;
    case uint8_t(Opcode::I32ShrS):
      BIN_INPLACE(uint32_t(shrS32(AI32, BU32)));
      break;
    case uint8_t(Opcode::I32ShrU):
      BIN_INPLACE(shrU32(AU32, BU32));
      break;
    case uint8_t(Opcode::I32Rotl):
      BIN_INPLACE(rotl32(AU32, BU32));
      break;
    case uint8_t(Opcode::I32Rotr):
      BIN_INPLACE(rotr32(AU32, BU32));
      break;

    case uint8_t(Opcode::I64Clz):
      UN_INPLACE(clz64(A));
      break;
    case uint8_t(Opcode::I64Ctz):
      UN_INPLACE(ctz64(A));
      break;
    case uint8_t(Opcode::I64Popcnt):
      UN_INPLACE(popcnt64(A));
      break;
    case uint8_t(Opcode::I64Add):
      BIN_INPLACE(A + B);
      break;
    case uint8_t(Opcode::I64Sub):
      BIN_INPLACE(A - B);
      break;
    case uint8_t(Opcode::I64Mul):
      BIN_INPLACE(A * B);
      break;
    case uint8_t(Opcode::I64DivS): {
      uint64_t B = POP(), A = POP();
      int64_t R;
      TrapReason Tr = divS64(int64_t(A), int64_t(B), &R);
      if (Tr != TrapReason::None)
        TRAP(Tr);
      PUSH(uint64_t(R), I64);
      break;
    }
    case uint8_t(Opcode::I64DivU): {
      uint64_t B = POP(), A = POP();
      uint64_t R;
      TrapReason Tr = divU64(A, B, &R);
      if (Tr != TrapReason::None)
        TRAP(Tr);
      PUSH(R, I64);
      break;
    }
    case uint8_t(Opcode::I64RemS): {
      uint64_t B = POP(), A = POP();
      int64_t R;
      TrapReason Tr = remS64(int64_t(A), int64_t(B), &R);
      if (Tr != TrapReason::None)
        TRAP(Tr);
      PUSH(uint64_t(R), I64);
      break;
    }
    case uint8_t(Opcode::I64RemU): {
      uint64_t B = POP(), A = POP();
      uint64_t R;
      TrapReason Tr = remU64(A, B, &R);
      if (Tr != TrapReason::None)
        TRAP(Tr);
      PUSH(R, I64);
      break;
    }
    case uint8_t(Opcode::I64And):
      BIN_INPLACE(A & B);
      break;
    case uint8_t(Opcode::I64Or):
      BIN_INPLACE(A | B);
      break;
    case uint8_t(Opcode::I64Xor):
      BIN_INPLACE(A ^ B);
      break;
    case uint8_t(Opcode::I64Shl):
      BIN_INPLACE(shl64(A, B));
      break;
    case uint8_t(Opcode::I64ShrS):
      BIN_INPLACE(uint64_t(shrS64(AI64, B)));
      break;
    case uint8_t(Opcode::I64ShrU):
      BIN_INPLACE(shrU64(A, B));
      break;
    case uint8_t(Opcode::I64Rotl):
      BIN_INPLACE(rotl64(A, B));
      break;
    case uint8_t(Opcode::I64Rotr):
      BIN_INPLACE(rotr64(A, B));
      break;

      // --- f32 arith ---
#define F32_UN(Expr) UN_INPLACE(f32ToBits(Expr))
#define F32_BIN(Expr) BIN_INPLACE(f32ToBits(Expr))
    case uint8_t(Opcode::F32Abs):
      F32_UN(std::fabs(AF32));
      break;
    case uint8_t(Opcode::F32Neg):
      UN_INPLACE(A ^ 0x80000000u);
      break;
    case uint8_t(Opcode::F32Ceil):
      F32_UN(std::ceil(AF32));
      break;
    case uint8_t(Opcode::F32Floor):
      F32_UN(std::floor(AF32));
      break;
    case uint8_t(Opcode::F32Trunc):
      F32_UN(std::trunc(AF32));
      break;
    case uint8_t(Opcode::F32Nearest):
      F32_UN(wasmNearest(AF32));
      break;
    case uint8_t(Opcode::F32Sqrt):
      F32_UN(canonNaN(std::sqrt(AF32)));
      break;
    case uint8_t(Opcode::F32Add):
      F32_BIN(canonNaN(AF32 + BF32));
      break;
    case uint8_t(Opcode::F32Sub):
      F32_BIN(canonNaN(AF32 - BF32));
      break;
    case uint8_t(Opcode::F32Mul):
      F32_BIN(canonNaN(AF32 * BF32));
      break;
    case uint8_t(Opcode::F32Div):
      F32_BIN(canonNaN(AF32 / BF32));
      break;
    case uint8_t(Opcode::F32Min):
      F32_BIN(wasmMin(AF32, BF32));
      break;
    case uint8_t(Opcode::F32Max):
      F32_BIN(wasmMax(AF32, BF32));
      break;
    case uint8_t(Opcode::F32Copysign):
      F32_BIN(std::copysign(AF32, BF32));
      break;

      // --- f64 arith ---
#define F64_UN(Expr) UN_INPLACE(f64ToBits(Expr))
#define F64_BIN(Expr) BIN_INPLACE(f64ToBits(Expr))
    case uint8_t(Opcode::F64Abs):
      F64_UN(std::fabs(AF64));
      break;
    case uint8_t(Opcode::F64Neg):
      UN_INPLACE(A ^ 0x8000000000000000ull);
      break;
    case uint8_t(Opcode::F64Ceil):
      F64_UN(std::ceil(AF64));
      break;
    case uint8_t(Opcode::F64Floor):
      F64_UN(std::floor(AF64));
      break;
    case uint8_t(Opcode::F64Trunc):
      F64_UN(std::trunc(AF64));
      break;
    case uint8_t(Opcode::F64Nearest):
      F64_UN(wasmNearest(AF64));
      break;
    case uint8_t(Opcode::F64Sqrt):
      F64_UN(canonNaN(std::sqrt(AF64)));
      break;
    case uint8_t(Opcode::F64Add):
      F64_BIN(canonNaN(AF64 + BF64));
      break;
    case uint8_t(Opcode::F64Sub):
      F64_BIN(canonNaN(AF64 - BF64));
      break;
    case uint8_t(Opcode::F64Mul):
      F64_BIN(canonNaN(AF64 * BF64));
      break;
    case uint8_t(Opcode::F64Div):
      F64_BIN(canonNaN(AF64 / BF64));
      break;
    case uint8_t(Opcode::F64Min):
      F64_BIN(wasmMin(AF64, BF64));
      break;
    case uint8_t(Opcode::F64Max):
      F64_BIN(wasmMax(AF64, BF64));
      break;
    case uint8_t(Opcode::F64Copysign):
      F64_BIN(std::copysign(AF64, BF64));
      break;

      // --- Conversions ---
    case uint8_t(Opcode::I32WrapI64):
      UN_RETAG(uint32_t(A), I32);
      break;
#define TRUNC_OP(FromView, ToType, Ty)                                         \
  do {                                                                         \
    uint64_t A = S[SpAbs - 1];                                                 \
    ToType R;                                                                  \
    TrapReason Tr = truncChecked(FromView, &R);                                \
    if (Tr != TrapReason::None)                                                \
      TRAP(Tr);                                                                \
    S[SpAbs - 1] = uint64_t(std::make_unsigned_t<ToType>(R));                  \
    if (Tg)                                                                    \
      Tg[SpAbs - 1] = uint8_t(ValType::Ty);                                    \
  } while (0)
    case uint8_t(Opcode::I32TruncF32S):
      TRUNC_OP(AF32, int32_t, I32);
      break;
    case uint8_t(Opcode::I32TruncF32U):
      TRUNC_OP(AF32, uint32_t, I32);
      break;
    case uint8_t(Opcode::I32TruncF64S):
      TRUNC_OP(AF64, int32_t, I32);
      break;
    case uint8_t(Opcode::I32TruncF64U):
      TRUNC_OP(AF64, uint32_t, I32);
      break;
    case uint8_t(Opcode::I64ExtendI32S):
      UN_RETAG(uint64_t(int64_t(int32_t(uint32_t(A)))), I64);
      break;
    case uint8_t(Opcode::I64ExtendI32U):
      UN_RETAG(uint64_t(uint32_t(A)), I64);
      break;
    case uint8_t(Opcode::I64TruncF32S):
      TRUNC_OP(AF32, int64_t, I64);
      break;
    case uint8_t(Opcode::I64TruncF32U):
      TRUNC_OP(AF32, uint64_t, I64);
      break;
    case uint8_t(Opcode::I64TruncF64S):
      TRUNC_OP(AF64, int64_t, I64);
      break;
    case uint8_t(Opcode::I64TruncF64U):
      TRUNC_OP(AF64, uint64_t, I64);
      break;
    case uint8_t(Opcode::F32ConvertI32S):
      UN_RETAG(f32ToBits(float(int32_t(uint32_t(A)))), F32);
      break;
    case uint8_t(Opcode::F32ConvertI32U):
      UN_RETAG(f32ToBits(float(uint32_t(A))), F32);
      break;
    case uint8_t(Opcode::F32ConvertI64S):
      UN_RETAG(f32ToBits(float(int64_t(A))), F32);
      break;
    case uint8_t(Opcode::F32ConvertI64U):
      UN_RETAG(f32ToBits(float(A)), F32);
      break;
    case uint8_t(Opcode::F32DemoteF64):
      UN_RETAG(f32ToBits(float(AF64)), F32);
      break;
    case uint8_t(Opcode::F64ConvertI32S):
      UN_RETAG(f64ToBits(double(int32_t(uint32_t(A)))), F64);
      break;
    case uint8_t(Opcode::F64ConvertI32U):
      UN_RETAG(f64ToBits(double(uint32_t(A))), F64);
      break;
    case uint8_t(Opcode::F64ConvertI64S):
      UN_RETAG(f64ToBits(double(int64_t(A))), F64);
      break;
    case uint8_t(Opcode::F64ConvertI64U):
      UN_RETAG(f64ToBits(double(A)), F64);
      break;
    case uint8_t(Opcode::F64PromoteF32):
      UN_RETAG(f64ToBits(double(AF32)), F64);
      break;
    case uint8_t(Opcode::I32ReinterpretF32):
      UN_RETAG(uint32_t(A), I32);
      break;
    case uint8_t(Opcode::I64ReinterpretF64):
      UN_RETAG(A, I64);
      break;
    case uint8_t(Opcode::F32ReinterpretI32):
      UN_RETAG(uint32_t(A), F32);
      break;
    case uint8_t(Opcode::F64ReinterpretI64):
      UN_RETAG(A, F64);
      break;
    case uint8_t(Opcode::I32Extend8S):
      UN_INPLACE(uint32_t(int32_t(int8_t(uint8_t(A)))));
      break;
    case uint8_t(Opcode::I32Extend16S):
      UN_INPLACE(uint32_t(int32_t(int16_t(uint16_t(A)))));
      break;
    case uint8_t(Opcode::I64Extend8S):
      UN_INPLACE(uint64_t(int64_t(int8_t(uint8_t(A)))));
      break;
    case uint8_t(Opcode::I64Extend16S):
      UN_INPLACE(uint64_t(int64_t(int16_t(uint16_t(A)))));
      break;
    case uint8_t(Opcode::I64Extend32S):
      UN_INPLACE(uint64_t(int64_t(int32_t(uint32_t(A)))));
      break;

    case uint8_t(Opcode::RefNull): {
      uint8_t HeapTy = *P++;
      S[SpAbs] = 0;
      if (Tg)
        Tg[SpAbs] =
            uint8_t(HeapTy == 0x70 ? ValType::FuncRef : ValType::ExternRef);
      ++SpAbs;
      break;
    }
    case uint8_t(Opcode::RefIsNull):
      UN_RETAG(A == 0, I32);
      break;
    case uint8_t(Opcode::RefFunc): {
      uint32_t Idx = fastU32(P);
      PUSH(uint64_t(Idx) + 1, FuncRef);
      break;
    }

    case 0xFC: { // Prefixed opcodes.
      uint32_t Sub = fastU32(P);
      switch (Opcode(0xFC00 | Sub)) {
#define TRUNC_SAT(FromView, ToType, Ty)                                        \
  do {                                                                         \
    uint64_t A = S[SpAbs - 1];                                                 \
    ToType R = truncSat<decltype(FromView), ToType>(FromView);                 \
    S[SpAbs - 1] = uint64_t(std::make_unsigned_t<ToType>(R));                  \
    if (Tg)                                                                    \
      Tg[SpAbs - 1] = uint8_t(ValType::Ty);                                    \
  } while (0)
      case Opcode::I32TruncSatF32S:
        TRUNC_SAT(AF32, int32_t, I32);
        break;
      case Opcode::I32TruncSatF32U:
        TRUNC_SAT(AF32, uint32_t, I32);
        break;
      case Opcode::I32TruncSatF64S:
        TRUNC_SAT(AF64, int32_t, I32);
        break;
      case Opcode::I32TruncSatF64U:
        TRUNC_SAT(AF64, uint32_t, I32);
        break;
      case Opcode::I64TruncSatF32S:
        TRUNC_SAT(AF32, int64_t, I64);
        break;
      case Opcode::I64TruncSatF32U:
        TRUNC_SAT(AF32, uint64_t, I64);
        break;
      case Opcode::I64TruncSatF64S:
        TRUNC_SAT(AF64, int64_t, I64);
        break;
      case Opcode::I64TruncSatF64U:
        TRUNC_SAT(AF64, uint64_t, I64);
        break;
      case Opcode::MemoryCopy: {
        P += 2; // Two memidx bytes.
        uint64_t Len = uint32_t(POP());
        uint64_t Src = uint32_t(POP());
        uint64_t Dst = uint32_t(POP());
        if (Src + Len > MemSize || Dst + Len > MemSize)
          TRAP(TrapReason::MemOutOfBounds);
        memmove(MemData + Dst, MemData + Src, size_t(Len));
        break;
      }
      case Opcode::MemoryFill: {
        ++P; // memidx byte.
        uint64_t Len = uint32_t(POP());
        uint32_t Val = uint32_t(POP());
        uint64_t Dst = uint32_t(POP());
        if (Dst + Len > MemSize)
          TRAP(TrapReason::MemOutOfBounds);
        memset(MemData + Dst, int(Val & 0xff), size_t(Len));
        break;
      }
      default:
        assert(false && "invalid prefixed opcode in validated code");
        TRAP(TrapReason::Unreachable);
      }
      break;
    }

    default:
      assert(false && "invalid opcode in validated code");
      TRAP(TrapReason::Unreachable);
    }
  }
}
