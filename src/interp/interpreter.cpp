//===- interp/interpreter.cpp - in-place Wasm interpreter ------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The dispatch loop decodes the original bytecode directly (immediates are
// re-decoded on every execution — the defining property of an in-place
// interpreter). Control transfers consult the side table; the interpreter
// keeps IP/STP in locals and writes them back to the frame only at
// observation points (calls, probes, traps, tier transitions).
//
//===----------------------------------------------------------------------===//

#include "interp/interpreter.h"

#include "runtime/hooks.h"
#include "runtime/numerics.h"
#include "wasm/codereader.h"

using namespace wisp;

#define WISP_UNLIKELY(x) __builtin_expect(!!(x), 0)

namespace {

/// Unchecked LEB decoders for validated code (the bytes were verified by
/// the validator, so bounds and width checks are unnecessary here).
inline uint32_t fastU32(const uint8_t *&P) {
  uint32_t B = *P++;
  if (!(B & 0x80))
    return B;
  uint32_t R = B & 0x7f;
  unsigned Shift = 7;
  do {
    B = *P++;
    R |= uint32_t(B & 0x7f) << Shift;
    Shift += 7;
  } while (B & 0x80);
  return R;
}

inline int32_t fastS32(const uint8_t *&P) {
  uint32_t B = *P++;
  if (!(B & 0x80))
    return int32_t(B << 25) >> 25; // Sign-extend from 7 bits.
  uint32_t R = B & 0x7f;
  unsigned Shift = 7;
  do {
    B = *P++;
    R |= uint32_t(B & 0x7f) << Shift;
    Shift += 7;
  } while (B & 0x80);
  if (Shift < 32 && (B & 0x40))
    R |= ~uint32_t(0) << Shift;
  return int32_t(R);
}

inline int64_t fastS64(const uint8_t *&P) {
  uint64_t R = 0;
  unsigned Shift = 0;
  uint8_t B;
  do {
    B = *P++;
    R |= uint64_t(B & 0x7f) << Shift;
    Shift += 7;
  } while (B & 0x80);
  if (Shift < 64 && (B & 0x40))
    R |= ~uint64_t(0) << Shift;
  return int64_t(R);
}

inline void skipBlockType(const uint8_t *&P) {
  // A block type is a single byte unless it is a non-negative s33 (type
  // index), which never has bit 6 set in its final byte... simply decode.
  (void)fastS64(P);
}

} // namespace

bool wisp::pushWasmFrame(Thread &T, FuncInstance *Func, uint32_t ArgBase) {
  const FuncDecl *D = Func->Decl;
  uint32_t NeedSlots = ArgBase + D->frameSlots();
  if (T.Frames.size() >= T.MaxFrames || NeedSlots > T.VS.capacity()) {
    T.setTrap(TrapReason::StackOverflow, D->BodyStart);
    return false;
  }
  // Governance charge: one fuel unit per wasm frame push, checked here so
  // every tier (both interpreters and all JIT pipelines route calls through
  // this function) charges identically; the trap site is the callee entry.
  if (WISP_UNLIKELY(T.Governed)) {
    TrapReason R = T.governCheck();
    if (WISP_UNLIKELY(R != TrapReason::None)) {
      T.setTrap(R, D->BodyStart);
      return false;
    }
  }
  Frame F;
  F.Func = Func;
  F.Vfp = ArgBase;
  F.Ip = D->BodyStart;
  F.Stp = 0;
  F.Sp = ArgBase + D->numLocalSlots();
  bool Jit = Func->UseJit && Func->Code != nullptr;
  F.Kind = Jit ? FrameKind::Jit : FrameKind::Interp;
  F.Code = Jit ? Func->Code : nullptr;
  F.Pc = 0;
  if (!Jit) {
    // Zero-initialize declared locals and their tags. (JIT prologues do
    // this themselves, typically as constants in the abstract state.)
    uint64_t *S = T.VS.slots();
    uint8_t *Tg = T.VS.tags();
    uint32_t NParams = uint32_t(Func->Type->Params.size());
    for (uint32_t I = NParams; I < D->LocalTypes.size(); ++I) {
      S[ArgBase + I] = 0;
      if (Tg)
        Tg[ArgBase + I] = uint8_t(D->LocalTypes[I]);
    }
  }
  T.Frames.push_back(F);
  if (T.Frames.size() > T.HighWaterFrames)
    T.HighWaterFrames = uint32_t(T.Frames.size());
  return true;
}

bool wisp::callHostFunc(Thread &T, FuncInstance *Func, uint32_t ArgBase,
                        uint32_t CallerIp) {
  const FuncType &FT = *Func->Type;
  Value Args[16];
  Value Results[16];
  assert(FT.Params.size() <= 16 && FT.Results.size() <= 16 &&
         "host signature too long");
  uint64_t *S = T.VS.slots();
  for (size_t I = 0; I < FT.Params.size(); ++I)
    Args[I] = Value{S[ArgBase + I], FT.Params[I]};
  for (size_t I = 0; I < FT.Results.size(); ++I)
    Results[I] = defaultValue(FT.Results[I]);
  TrapReason R = Func->Host->Fn(*Func->Inst, Args, Results);
  if (R != TrapReason::None) {
    T.setTrap(R, CallerIp);
    return false;
  }
  uint8_t *Tg = T.VS.tags();
  S = T.VS.slots(); // The host may not resize the stack, but be safe.
  for (size_t I = 0; I < FT.Results.size(); ++I) {
    S[ArgBase + I] = Results[I].Bits;
    if (Tg)
      Tg[ArgBase + I] = uint8_t(FT.Results[I]);
  }
  return true;
}

RunSignal wisp::runInterpreter(Thread &T, size_t EntryDepth) {
  assert(!T.Frames.empty() && T.Frames.size() >= EntryDepth);
  assert(T.top().Kind == FrameKind::Interp && "top frame is not interp");

  Instance *Inst = T.Inst;
  const uint8_t *Bytes = Inst->M->Bytes.data();
  uint64_t *S = T.VS.slots();
  uint8_t *Tg = T.VS.tags();

  // Per-frame cached state.
  Frame *F = nullptr;
  FuncInstance *Func = nullptr;
  const uint8_t *P = nullptr;
  const uint8_t *BodyEndP = nullptr;
  const SideTableEntry *ST = nullptr;
  uint32_t Stp = 0;
  uint32_t SpAbs = 0;
  uint32_t Vfp = 0;
  uint32_t LocalBase = 0; // == Vfp (locals start at frame base).
  bool HasProbes = false;
  uint8_t *MemData = Inst->HasMemory ? Inst->Memory.data() : nullptr;
  uint64_t MemSize = Inst->HasMemory ? Inst->Memory.byteSize() : 0;

  auto restore = [&]() {
    F = &T.Frames.back();
    Func = F->Func;
    P = Bytes + F->Ip;
    BodyEndP = Bytes + Func->Decl->BodyEnd;
    ST = Func->Decl->Table.Entries.data();
    Stp = F->Stp;
    SpAbs = F->Sp;
    Vfp = F->Vfp;
    LocalBase = Vfp;
    HasProbes = !Func->ProbeBits.empty();
    MemData = Inst->HasMemory ? Inst->Memory.data() : nullptr;
    MemSize = Inst->HasMemory ? Inst->Memory.byteSize() : 0;
  };
  auto writeback = [&](const uint8_t *At) {
    F->Ip = uint32_t(At - Bytes);
    F->Stp = Stp;
    F->Sp = SpAbs;
  };

  restore();

  const uint8_t *OpP = P; // Offset of the current opcode (for traps).

#define TRAP(Reason)                                                           \
  do {                                                                         \
    writeback(OpP);                                                            \
    T.setTrap(Reason, uint32_t(OpP - Bytes));                                  \
    return RunSignal::Trapped;                                                 \
  } while (0)

  // --- Stack helpers (absolute slot indexing; top at SpAbs-1) ---
#define PUSH(BitsV, Ty)                                                        \
  do {                                                                         \
    S[SpAbs] = (BitsV);                                                        \
    if (Tg)                                                                    \
      Tg[SpAbs] = uint8_t(ValType::Ty);                                        \
    ++SpAbs;                                                                   \
  } while (0)
#define TOP() S[SpAbs - 1]
#define POP() S[--SpAbs]

  // In-place binary op on two same-typed operands (no tag change).
#define BIN_INPLACE(Expr)                                                      \
  do {                                                                         \
    uint64_t B = S[SpAbs - 1];                                                 \
    uint64_t A = S[SpAbs - 2];                                                 \
    (void)A;                                                                   \
    (void)B;                                                                   \
    S[SpAbs - 2] = (Expr);                                                     \
    --SpAbs;                                                                   \
  } while (0)
  // Binary op whose result type differs from the operand type.
#define BIN_RETAG(Expr, Ty)                                                    \
  do {                                                                         \
    uint64_t B = S[SpAbs - 1];                                                 \
    uint64_t A = S[SpAbs - 2];                                                 \
    (void)A;                                                                   \
    (void)B;                                                                   \
    S[SpAbs - 2] = (Expr);                                                     \
    if (Tg)                                                                    \
      Tg[SpAbs - 2] = uint8_t(ValType::Ty);                                    \
    --SpAbs;                                                                   \
  } while (0)
#define UN_INPLACE(Expr)                                                       \
  do {                                                                         \
    uint64_t A = S[SpAbs - 1];                                                 \
    (void)A;                                                                   \
    S[SpAbs - 1] = (Expr);                                                     \
  } while (0)
#define UN_RETAG(Expr, Ty)                                                     \
  do {                                                                         \
    uint64_t A = S[SpAbs - 1];                                                 \
    (void)A;                                                                   \
    S[SpAbs - 1] = (Expr);                                                     \
    if (Tg)                                                                    \
      Tg[SpAbs - 1] = uint8_t(ValType::Ty);                                    \
  } while (0)

  // Operand views.
#define AI32 int32_t(uint32_t(A))
#define BI32 int32_t(uint32_t(B))
#define AU32 uint32_t(A)
#define BU32 uint32_t(B)
#define AI64 int64_t(A)
#define BI64 int64_t(B)
#define AF32 bitsToF32(uint32_t(A))
#define BF32 bitsToF32(uint32_t(B))
#define AF64 bitsToF64(A)
#define BF64 bitsToF64(B)

  // Takes the side-table entry at Stp as a control transfer.
  auto takeBranch = [&](const SideTableEntry &E, const uint8_t *OpPtr) -> int {
    uint32_t SrcBase = SpAbs - E.ValCount;
    uint32_t DstBase = Vfp + Func->Decl->numLocalSlots() + E.TargetHeight;
    if (SrcBase != DstBase && E.ValCount) {
      memmove(S + DstBase, S + SrcBase, size_t(E.ValCount) * 8);
      if (Tg)
        memmove(Tg + DstBase, Tg + SrcBase, E.ValCount);
    }
    SpAbs = DstBase + E.ValCount;
    bool Backward = E.TargetIp <= uint32_t(OpPtr - Bytes);
    P = Bytes + E.TargetIp;
    Stp = E.TargetStp;
    // Governance charge: one fuel unit per taken backedge (backward
    // branches always target a loop header). Charged BEFORE the tier-up
    // hook so an OSR entry placed after the compiled header check does not
    // double-charge the transition iteration.
    if (WISP_UNLIKELY(Backward && T.Governed)) {
      TrapReason R = T.governCheck();
      if (WISP_UNLIKELY(R != TrapReason::None)) {
        writeback(P);
        T.setTrap(R, E.TargetIp);
        return 2; // Trapped.
      }
    }
    if (WISP_UNLIKELY(Backward && T.TierUpThreshold)) {
      if (++Func->HotCount == T.TierUpThreshold && T.Hooks) {
        writeback(P);
        if (T.Hooks->onLoopBackedge(T, Func, E.TargetIp))
          return 1; // Frame tiered up; yield to the dispatcher.
        restore();
      }
    }
    return 0;
  };

  for (;;) {
    OpP = P;
    ++T.InterpSteps;
    if (WISP_UNLIKELY(HasProbes) && Func->probedAt(uint32_t(OpP - Bytes))) {
      writeback(OpP);
      if (T.Hooks)
        T.Hooks->fireProbes(T, Func, uint32_t(OpP - Bytes));
      // Modeled cost of the runtime probe lookup, accessor allocation and
      // callback; shared with the threaded interpreter so both tiers charge
      // the same dispatch-strategy-independent price.
      T.InterpSteps += Thread::ProbeDispatchSteps;
      restore();
      OpP = P;
    }
    uint8_t Op = *P++;
    switch (Op) {
    case uint8_t(Opcode::Unreachable):
      TRAP(TrapReason::Unreachable);
    case uint8_t(Opcode::Nop):
      break;
    case uint8_t(Opcode::Block):
      skipBlockType(P);
      break;
    case uint8_t(Opcode::Loop):
      skipBlockType(P);
      // Governance charge: loop-header arrival by fallthrough entry. The
      // trap site is the header ip (first body instruction), matching the
      // backedge charge in takeBranch and the JIT's header FuelCheck.
      if (WISP_UNLIKELY(T.Governed)) {
        TrapReason R = T.governCheck();
        if (WISP_UNLIKELY(R != TrapReason::None)) {
          writeback(P);
          T.setTrap(R, uint32_t(P - Bytes));
          return RunSignal::Trapped;
        }
      }
      break;
    case uint8_t(Opcode::If): {
      skipBlockType(P);
      uint32_t Cond = uint32_t(POP());
      if (Cond) {
        ++Stp; // Skip the false-edge entry.
      } else if (int Sig = takeBranch(ST[Stp], OpP)) {
        return Sig == 2 ? RunSignal::Trapped : RunSignal::SwitchTier;
      }
      break;
    }
    case uint8_t(Opcode::Else):
      // Fallthrough from the then-branch: skip past the end.
      if (int Sig = takeBranch(ST[Stp], OpP))
        return Sig == 2 ? RunSignal::Trapped : RunSignal::SwitchTier;
      break;
    case uint8_t(Opcode::End): {
      if (P != BodyEndP)
        break; // Inner end: no-op.
      // Function return.
      uint32_t NRes = uint32_t(Func->Type->Results.size());
      uint32_t Dst = Vfp;
      uint32_t Src = SpAbs - NRes;
      if (Src != Dst && NRes) {
        memmove(S + Dst, S + Src, size_t(NRes) * 8);
        if (Tg)
          memmove(Tg + Dst, Tg + Src, NRes);
      }
      T.Frames.pop_back();
      if (T.Frames.size() < EntryDepth)
        return RunSignal::Done;
      T.Frames.back().Sp = Dst + NRes;
      if (T.Frames.back().Kind == FrameKind::Jit)
        return RunSignal::SwitchTier;
      restore();
      break;
    }
    case uint8_t(Opcode::Br):
      fastU32(P);
      if (int Sig = takeBranch(ST[Stp], OpP))
        return Sig == 2 ? RunSignal::Trapped : RunSignal::SwitchTier;
      break;
    case uint8_t(Opcode::BrIf): {
      fastU32(P);
      uint32_t Cond = uint32_t(POP());
      if (!Cond) {
        ++Stp;
      } else if (int Sig = takeBranch(ST[Stp], OpP)) {
        return Sig == 2 ? RunSignal::Trapped : RunSignal::SwitchTier;
      }
      break;
    }
    case uint8_t(Opcode::BrTable): {
      uint32_t N = fastU32(P);
      uint32_t Idx = uint32_t(POP());
      uint32_t Sel = Idx < N ? Idx : N;
      if (int Sig = takeBranch(ST[Stp + Sel], OpP))
        return Sig == 2 ? RunSignal::Trapped : RunSignal::SwitchTier;
      break;
    }
    case uint8_t(Opcode::Return): {
      uint32_t NRes = uint32_t(Func->Type->Results.size());
      uint32_t Dst = Vfp;
      uint32_t Src = SpAbs - NRes;
      if (Src != Dst && NRes) {
        memmove(S + Dst, S + Src, size_t(NRes) * 8);
        if (Tg)
          memmove(Tg + Dst, Tg + Src, NRes);
      }
      T.Frames.pop_back();
      if (T.Frames.size() < EntryDepth)
        return RunSignal::Done;
      T.Frames.back().Sp = Dst + NRes;
      if (T.Frames.back().Kind == FrameKind::Jit)
        return RunSignal::SwitchTier;
      restore();
      break;
    }

    case uint8_t(Opcode::Call): {
      uint32_t Idx = fastU32(P);
      FuncInstance *Callee = Inst->func(Idx);
      uint32_t NArgs = uint32_t(Callee->Type->Params.size());
      uint32_t ArgBase = SpAbs - NArgs;
      writeback(P);
      if (Callee->Host) {
        if (!callHostFunc(T, Callee, ArgBase, uint32_t(OpP - Bytes)))
          return RunSignal::Trapped;
        SpAbs = ArgBase + uint32_t(Callee->Type->Results.size());
        F->Sp = SpAbs;
        MemData = Inst->HasMemory ? Inst->Memory.data() : nullptr;
        MemSize = Inst->HasMemory ? Inst->Memory.byteSize() : 0;
        break;
      }
      if (WISP_UNLIKELY(T.TierUpThreshold) && !Callee->UseJit) {
        Callee->HotCount += 8;
        if (Callee->HotCount >= T.TierUpThreshold && T.Hooks)
          T.Hooks->onFuncHot(T, Callee);
      }
      if (!pushWasmFrame(T, Callee, ArgBase))
        return RunSignal::Trapped;
      if (T.Frames.back().Kind == FrameKind::Jit)
        return RunSignal::SwitchTier;
      restore();
      break;
    }

    case uint8_t(Opcode::CallIndirect): {
      uint32_t TypeIdx = fastU32(P);
      uint32_t TableIdx = fastU32(P);
      uint32_t EIdx = uint32_t(POP());
      Table &Tab = Inst->Tables[TableIdx];
      if (EIdx >= Tab.Elems.size())
        TRAP(TrapReason::TableOutOfBounds);
      uint64_t Bits = Tab.Elems[EIdx];
      if (Bits == 0)
        TRAP(TrapReason::NullFuncRef);
      FuncInstance *Callee = Inst->func(uint32_t(Bits - 1));
      if (!(*Callee->Type == Inst->M->Types[TypeIdx]))
        TRAP(TrapReason::IndirectCallTypeMismatch);
      uint32_t NArgs = uint32_t(Callee->Type->Params.size());
      uint32_t ArgBase = SpAbs - NArgs;
      writeback(P);
      F->Sp = ArgBase; // Args are consumed by the callee.
      if (Callee->Host) {
        if (!callHostFunc(T, Callee, ArgBase, uint32_t(OpP - Bytes)))
          return RunSignal::Trapped;
        SpAbs = ArgBase + uint32_t(Callee->Type->Results.size());
        F->Sp = SpAbs;
        MemData = Inst->HasMemory ? Inst->Memory.data() : nullptr;
        MemSize = Inst->HasMemory ? Inst->Memory.byteSize() : 0;
        break;
      }
      if (!pushWasmFrame(T, Callee, ArgBase))
        return RunSignal::Trapped;
      if (T.Frames.back().Kind == FrameKind::Jit)
        return RunSignal::SwitchTier;
      restore();
      break;
    }

    case uint8_t(Opcode::Drop):
      --SpAbs;
      break;
    case uint8_t(Opcode::Select): {
      uint32_t Cond = uint32_t(POP());
      if (!Cond) {
        S[SpAbs - 2] = S[SpAbs - 1];
        if (Tg)
          Tg[SpAbs - 2] = Tg[SpAbs - 1];
      }
      --SpAbs;
      break;
    }
    case uint8_t(Opcode::SelectT): {
      uint32_t N = fastU32(P);
      P += N; // Type bytes.
      uint32_t Cond = uint32_t(POP());
      if (!Cond) {
        S[SpAbs - 2] = S[SpAbs - 1];
        if (Tg)
          Tg[SpAbs - 2] = Tg[SpAbs - 1];
      }
      --SpAbs;
      break;
    }

    case uint8_t(Opcode::LocalGet): {
      uint32_t Idx = fastU32(P);
      S[SpAbs] = S[LocalBase + Idx];
      if (Tg)
        Tg[SpAbs] = Tg[LocalBase + Idx];
      ++SpAbs;
      break;
    }
    case uint8_t(Opcode::LocalSet): {
      uint32_t Idx = fastU32(P);
      S[LocalBase + Idx] = POP();
      break;
    }
    case uint8_t(Opcode::LocalTee): {
      uint32_t Idx = fastU32(P);
      S[LocalBase + Idx] = TOP();
      break;
    }
    case uint8_t(Opcode::GlobalGet): {
      uint32_t Idx = fastU32(P);
      const Global &G = Inst->Globals[Idx];
      S[SpAbs] = G.Bits;
      if (Tg)
        Tg[SpAbs] = uint8_t(G.Type);
      ++SpAbs;
      break;
    }
    case uint8_t(Opcode::GlobalSet): {
      uint32_t Idx = fastU32(P);
      Inst->Globals[Idx].Bits = POP();
      break;
    }

      // --- Shared simple ops (loads, stores, compares, arithmetic,
      // conversions) — bodies live in handlers.inc, the single source of
      // truth shared with the threaded-dispatch interpreter. This tier
      // decodes memory immediates in place (the in-place-interpreter tax
      // the pre-decoder eliminates).
#define LOAD_OP(CType, Read, Ty)                                               \
  do {                                                                         \
    fastU32(P); /* align */                                                    \
    uint32_t Off = fastU32(P);                                                 \
    uint64_t EA = uint64_t(uint32_t(TOP())) + Off;                             \
    if (WISP_UNLIKELY(EA + sizeof(CType) > MemSize))                           \
      TRAP(TrapReason::MemOutOfBounds);                                        \
    CType V;                                                                   \
    memcpy(&V, MemData + EA, sizeof(CType));                                   \
    UN_RETAG(Read, Ty);                                                        \
  } while (0)

#define STORE_OP(CType, ValExpr)                                               \
  do {                                                                         \
    fastU32(P); /* align */                                                    \
    uint32_t Off = fastU32(P);                                                 \
    uint64_t Raw = POP();                                                      \
    (void)Raw;                                                                 \
    uint64_t EA = uint64_t(uint32_t(POP())) + Off;                             \
    if (WISP_UNLIKELY(EA + sizeof(CType) > MemSize))                           \
      TRAP(TrapReason::MemOutOfBounds);                                        \
    CType V = (ValExpr);                                                       \
    memcpy(MemData + EA, &V, sizeof(CType));                                   \
    Inst->Memory.noteWrite(EA + sizeof(CType));                                \
  } while (0)

#define WISP_OP(Name, ...)                                                     \
  case uint8_t(Opcode::Name):                                                  \
    __VA_ARGS__;                                                               \
    break;
#include "interp/handlers.inc"

    case uint8_t(Opcode::MemorySize):
      ++P; // memidx
      PUSH(Inst->Memory.pages(), I32);
      break;
    case uint8_t(Opcode::MemoryGrow): {
      ++P; // memidx
      uint32_t Delta = uint32_t(TOP());
      int64_t Old = Inst->Memory.grow(Delta);
      S[SpAbs - 1] = uint64_t(uint32_t(Old));
      MemData = Inst->Memory.data();
      MemSize = Inst->Memory.byteSize();
      break;
    }

    case uint8_t(Opcode::I32Const): {
      int32_t V = fastS32(P);
      PUSH(uint32_t(V), I32);
      break;
    }
    case uint8_t(Opcode::I64Const): {
      int64_t V = fastS64(P);
      PUSH(uint64_t(V), I64);
      break;
    }
    case uint8_t(Opcode::F32Const): {
      uint32_t V;
      memcpy(&V, P, 4);
      P += 4;
      PUSH(V, F32);
      break;
    }
    case uint8_t(Opcode::F64Const): {
      uint64_t V;
      memcpy(&V, P, 8);
      P += 8;
      PUSH(V, F64);
      break;
    }

    case uint8_t(Opcode::RefNull): {
      uint8_t HeapTy = *P++;
      S[SpAbs] = 0;
      if (Tg)
        Tg[SpAbs] =
            uint8_t(HeapTy == 0x70 ? ValType::FuncRef : ValType::ExternRef);
      ++SpAbs;
      break;
    }
    case uint8_t(Opcode::RefFunc): {
      uint32_t Idx = fastU32(P);
      PUSH(uint64_t(Idx) + 1, FuncRef);
      break;
    }

    case 0xFC: { // Prefixed opcodes.
      uint32_t Sub = fastU32(P);
      switch (Opcode(0xFC00 | Sub)) {
#define WISP_OP_FC(Name, ...)                                                  \
      case Opcode::Name:                                                       \
        __VA_ARGS__;                                                           \
        break;
#include "interp/handlers.inc"
      case Opcode::MemoryCopy: {
        P += 2; // Two memidx bytes.
        uint64_t Len = uint32_t(POP());
        uint64_t Src = uint32_t(POP());
        uint64_t Dst = uint32_t(POP());
        if (Src + Len > MemSize || Dst + Len > MemSize)
          TRAP(TrapReason::MemOutOfBounds);
        memmove(MemData + Dst, MemData + Src, size_t(Len));
        Inst->Memory.noteWrite(Dst + Len);
        break;
      }
      case Opcode::MemoryFill: {
        ++P; // memidx byte.
        uint64_t Len = uint32_t(POP());
        uint32_t Val = uint32_t(POP());
        uint64_t Dst = uint32_t(POP());
        if (Dst + Len > MemSize)
          TRAP(TrapReason::MemOutOfBounds);
        memset(MemData + Dst, int(Val & 0xff), size_t(Len));
        Inst->Memory.noteWrite(Dst + Len);
        break;
      }
      default:
        assert(false && "invalid prefixed opcode in validated code");
        TRAP(TrapReason::Unreachable);
      }
      break;
    }

    default:
      assert(false && "invalid opcode in validated code");
      TRAP(TrapReason::Unreachable);
    }
  }
}
