//===- interp/threaded.h - threaded-dispatch interpreter --------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The threaded-dispatch interpreter tier: executes the pre-decoded IR
/// built by predecode.h with computed-goto (token-threaded) dispatch under
/// GCC/Clang, or a portable switch fallback when built with
/// WISP_THREADED=OFF. Handler bodies are shared with the in-place switch
/// interpreter through interp/handlers.inc, so the two tiers cannot drift
/// semantically; frames stay in the bytecode Ip/Stp coordinate system, so
/// probes, OSR tier-up and deopt tier-down interoperate unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_INTERP_THREADED_H
#define WISP_INTERP_THREADED_H

#include "runtime/instance.h"
#include "runtime/thread.h"

namespace wisp {

/// Runs the top frame (which must be an Interp frame) on the threaded
/// tier until control returns below \p EntryDepth, a JIT frame becomes the
/// top of stack, or a trap occurs. Frames without pre-decoded IR, or
/// resuming at an offset the IR cannot express (inside a fused
/// superinstruction after a deopt), delegate to the switch interpreter.
RunSignal runThreadedInterpreter(Thread &T, size_t EntryDepth);

} // namespace wisp

#endif // WISP_INTERP_THREADED_H
