//===- interp/interpreter.h - in-place Wasm interpreter ---------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-place interpreter (the paper's Wizard-INT): executes original
/// Wasm bytecode directly, using the validator-built side table for control
/// transfers. The value stack is explicit in memory and value tags are
/// written on every push when the tag lane is present, so the execution
/// state is always fully introspectable (tracing, probes, GC roots).
///
//===----------------------------------------------------------------------===//

#ifndef WISP_INTERP_INTERPRETER_H
#define WISP_INTERP_INTERPRETER_H

#include "runtime/instance.h"
#include "runtime/thread.h"

namespace wisp {

/// Runs the top frame (which must be an Interp frame) and any frames it
/// pushes, until control returns below \p EntryDepth, a JIT-tier frame
/// becomes the top of stack, or a trap occurs.
RunSignal runInterpreter(Thread &T, size_t EntryDepth);

/// Pushes a frame for \p Func with arguments already placed at \p ArgBase
/// (absolute value-stack slot). Zero-initializes declared locals and their
/// tags. Returns false on stack overflow (trap is set). The frame kind is
/// chosen from Func->UseJit.
bool pushWasmFrame(Thread &T, FuncInstance *Func, uint32_t ArgBase);

/// Calls a host function with \p ArgBase as the first argument slot.
/// Reads/writes the value stack directly; sets a trap on host error.
/// Leaves results at ArgBase.
bool callHostFunc(Thread &T, FuncInstance *Func, uint32_t ArgBase,
                  uint32_t CallerIp);

} // namespace wisp

#endif // WISP_INTERP_INTERPRETER_H
