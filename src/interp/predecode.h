//===- interp/predecode.h - threaded-IR pre-decoder -------------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-pass pre-decoder translating a validated function body into a
/// compact internal threaded IR: one fixed-size unit per executed opcode
/// holding a handler token, immediates already LEB-decoded and widened, and
/// branch targets/side-table entries pre-resolved to IR offsets so taking a
/// branch no longer walks STP bookkeeping. Structural no-ops (nop, block,
/// loop, inner end) are elided, and hot op pairs/triples are fused into
/// superinstructions unless a probe or branch target forbids it.
///
/// The IR keeps the original bytecode offset (and side-table position) of
/// every unit so frames written back by the threaded interpreter stay in
/// the same Ip/Stp coordinate system as the switch interpreter, the JIT
/// (OSR/deopt) and the probe registry.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_INTERP_PREDECODE_H
#define WISP_INTERP_PREDECODE_H

#include "runtime/instance.h"
#include "wasm/module.h"

#include <memory>
#include <vector>

namespace wisp {

/// Threaded-interpreter ops that need bespoke handlers (control flow,
/// locals, calls, parametrics). The shared simple ops and the
/// superinstructions are appended from handlers.inc so the enum, the
/// computed-goto handler table and the dispatch switch can never drift.
#define WISP_SPECIAL_TOPS(X)                                                   \
  X(Unreachable)                                                               \
  X(Nop)                                                                       \
  X(Return)                                                                    \
  X(Br)                                                                        \
  X(BrIf)                                                                      \
  X(BrTable)                                                                   \
  X(IfFalse)                                                                   \
  X(Call)                                                                      \
  X(CallIndirect)                                                              \
  X(Drop)                                                                      \
  X(Select)                                                                    \
  X(LocalGet)                                                                  \
  X(LocalSet)                                                                  \
  X(LocalTee)                                                                  \
  X(GlobalGet)                                                                 \
  X(GlobalSet)                                                                 \
  X(MemorySize)                                                                \
  X(MemoryGrow)                                                                \
  X(Const)                                                                     \
  X(MemoryCopy)                                                                \
  X(MemoryFill)                                                                \
  X(SetGet)                                                                    \
  X(FuelGate)

enum class TOp : uint16_t {
#define WISP_TOP_ENUM(Name) Name,
  WISP_SPECIAL_TOPS(WISP_TOP_ENUM)
#undef WISP_TOP_ENUM
#define WISP_OP(Name, ...) Name,
#define WISP_OP_FC(Name, ...) Name,
#define WISP_FUSE_BINOP(Name, Expr, Ty) Name, GetGet##Name, GetConst##Name,
#define WISP_FUSE_CMPOP(Name, Cond)                                            \
  Name, GetGet##Name, GetConst##Name, Name##ThenBr, GetGet##Name##ThenBr,
#include "interp/handlers.inc"
  Count,
};

/// One threaded-IR unit (32 bytes). Field use by op family:
///
///   all units        BcIp = bytecode offset of the (first) source opcode,
///                    Stp  = side-table position at that opcode
///   Const            B = value bits, Aux = ValType tag
///   LocalGet/Set/Tee A = local index
///   SetGet           A = set index, Aux = get index
///   GlobalGet/Set    A = global index
///   loads/stores     A = memarg offset
///   Call             A = function index
///   CallIndirect     A = type index, Aux = table index
///   Br/BrIf/IfFalse  A = target unit, Aux = frame-relative destination
///   (+ fused forms)  slot base (numLocalSlots + TargetHeight), ValCount =
///                    merge value count, B = original target bytecode ip |
///                    backward-flag << 32; GetGet<cmp>ThenBr additionally
///                    packs its two local indices into X (lo16/hi16)
///   BrTable          A = first BrCase index, X = N (number of non-default
///                    cases)
///   GetGet<op>       A = left local, Aux = right local
///   GetConst<op>     A = left local, B = right constant bits
struct IrUnit {
  uint16_t Op = 0;       ///< TOp handler token.
  uint16_t ValCount = 0; ///< Branch merge value count.
  uint32_t A = 0;
  uint32_t Aux = 0;
  uint32_t BcIp = 0;
  uint32_t Stp = 0;
  uint32_t X = 0;
  uint64_t B = 0;
};
static_assert(sizeof(IrUnit) == 32, "IrUnit layout drifted");

/// One pre-resolved br_table case (including the default, stored last).
struct BrCase {
  uint32_t TargetUnit = 0;
  uint32_t DstBase = 0; ///< Frame-relative destination slot base.
  uint32_t ValCount = 0;
  uint64_t IpFlag = 0; ///< Target bytecode ip | backward-flag << 32.
};

/// Pre-decoded threaded IR for one function body.
class ThreadedCode {
public:
  static constexpr uint32_t NoUnit = ~0u;

  std::vector<IrUnit> Units;
  std::vector<BrCase> Cases;
  /// Bytecode ranges [begin, end) covered by fused superinstructions, in
  /// ascending order. A frame may not resume inside one (see unitIndexAt).
  std::vector<std::pair<uint32_t, uint32_t>> FusedSpans;
  uint32_t NumFused = 0;   ///< Fused units emitted.
  uint32_t NumSources = 0; ///< Source opcodes covered by Units.

  size_t byteSize() const {
    return Units.size() * sizeof(IrUnit) + Cases.size() * sizeof(BrCase);
  }

  /// Maps a bytecode offset to the unit executing it. Offsets of elided
  /// structural no-ops resolve to the next executed unit (semantically
  /// identical). Returns NoUnit when \p BcIp lies inside a fused
  /// superinstruction or past the last unit — the caller must then fall
  /// back to the switch interpreter, which can resume anywhere.
  uint32_t unitIndexAt(uint32_t BcIp) const;
};

/// Pre-decodes a validated function body into threaded IR. \p FI (optional)
/// supplies the probe bitmap: probed offsets keep their unit (even for
/// otherwise-elided no-ops) and suppress fusion, so a probe planted
/// mid-pair still fires exactly as on the switch interpreter. Fusion is
/// disabled entirely with \p EnableFusion false (tiered configurations:
/// deopt may resume at any checkpoint, which must never land mid-fusion).
/// With \p EmitFuelGates a TOp::FuelGate unit is inserted at every loop
/// header ip (governed engines): the gate performs the loop-entry fuel
/// charge on fallthrough, while taken backedges charge inside the branch
/// handler (before the tier-up hook) and resolve past the gate, so no
/// arrival is ever charged twice.
std::unique_ptr<ThreadedCode> predecodeFunction(const Module &M,
                                                const FuncDecl &D,
                                                const FuncInstance *FI,
                                                bool EnableFusion,
                                                bool EmitFuelGates = false);

} // namespace wisp

#endif // WISP_INTERP_PREDECODE_H
