//===- analysis/analysis.h - whole-module static analysis -------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-module static analysis over validated function bodies: a one-pass
/// abstract interpreter derives per-function operand-stack and frame-size
/// bounds, constant-feeding facts (for guaranteed-trap and dead br_table
/// case lints) and the direct/indirect call edges; an interprocedural layer
/// builds the call graph, detects recursion (SCCs), bounds worst-case call
/// depth for the recursion-free regions, and infers static memory-page
/// bounds. The facts feed three consumers:
///
///   1. `wisp --analyze` — a human report plus a JSON machine artifact.
///   2. The serve/batch admission precheck — jobs whose static bounds
///      provably exceed the effective governance caps are rejected at
///      admission instead of running to the trap.
///   3. The artifact verifier — per-function stack/frame bounds tighten
///      the `frame-size` and `call-shape` checks on every tier, including
///      the optimizing one.
///
/// Soundness contract (fuzz-verified by the differ on every seed): observed
/// call depth never exceeds DepthBound when DepthBounded; observed memory
/// pages never exceed PageBound when PagesBounded; no executed function is
/// ever reported unreachable; and a trap-free run of an export reaches at
/// least its MustDepth.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_ANALYSIS_ANALYSIS_H
#define WISP_ANALYSIS_ANALYSIS_H

#include "wasm/module.h"

#include <cstdint>
#include <string>
#include <vector>

namespace wisp {

/// MustDepth value meaning "no trap-free complete execution exists"
/// (unconditional recursion): the job must trap under ANY finite cap.
constexpr uint32_t AnalysisDepthInfinite = UINT32_MAX;

/// One lint finding. Every finding is a *guarantee*, not a heuristic:
/// unreachable means no call path from any root can reach the function;
/// a guaranteed-trap site traps on every execution that reaches it; a
/// dead br_table case can never be selected.
struct LintFinding {
  enum Kind : uint8_t {
    UnreachableFunc, ///< No path from exports/start/tables reaches it.
    GuaranteedTrap,  ///< Site traps whenever executed.
    DeadBrTableCase, ///< Constant selector: cases that cannot be picked.
  };
  Kind K = GuaranteedTrap;
  uint32_t FuncIndex = 0;
  uint32_t Ip = 0; ///< Bytecode offset; the body start for function-level.
  std::string Detail;
};

const char *lintKindName(LintFinding::Kind K);

/// Per-function facts from one pass of the abstract interpreter.
struct FuncFacts {
  uint32_t FuncIndex = 0;
  bool Imported = false;
  /// Max operand-stack height over *reachable* opcodes (slots; locals
  /// excluded). Always <= the validator's MaxStack, and a floor every
  /// tier's frame must cover: FrameSlots >= locals + StackBound.
  uint32_t StackBound = 0;
  /// Declared locals (params included) + StackBound.
  uint32_t FrameSlotBound = 0;
  bool HasLoop = false;        ///< Contains a `loop` header.
  bool GrowsMemory = false;    ///< Contains `memory.grow`.
  bool HasIndirectCall = false;
  std::vector<uint32_t> Callees; ///< Direct callees, deduped, sorted.
  /// Worst-case call depth in frames (this function's frame = 1) over
  /// every possible call chain, when DepthBounded. Indirect calls add
  /// conservative edges to every type-compatible table-segment function.
  bool DepthBounded = false;
  uint32_t DepthBound = 0;
  /// Guaranteed minimum call depth of any trap-free complete execution:
  /// direct calls on the unconditional prefix of the body (before the
  /// first branch, loop, indirect call or side exit) must execute.
  /// AnalysisDepthInfinite encodes unconditional recursion.
  uint32_t MustDepth = 1;
  /// Reachable from the module roots (exports, start, escaped refs).
  bool Reachable = false;
  /// Part of a call-graph cycle (conservative: indirect edges included).
  bool InRecursiveScc = false;
};

/// Whole-module facts: the per-function layer plus the interprocedural
/// call-graph, memory and table facts, and the collected lint findings.
struct ModuleAnalysis {
  std::vector<FuncFacts> Funcs;
  /// No call-graph cycle anywhere (conservative indirect edges included).
  bool RecursionFree = false;
  /// No reachable function contains a loop (with RecursionFree, every
  /// execution terminates and total work is statically bounded).
  bool LoopFree = false;
  /// Worst-case call depth from any root, when DepthBounded.
  bool DepthBounded = false;
  uint32_t DepthBound = 0;
  bool HasMemory = false;
  uint32_t MinPages = 0;
  /// Some *reachable* function contains memory.grow (host functions never
  /// grow wasm linear memory, so this is the only growth channel).
  bool GrowsMemory = false;
  /// Static bound on linear-memory pages ever held, when PagesBounded:
  /// the declared min if no reachable memory.grow exists, else the
  /// declared max. Unbounded only for growing memories without a max.
  bool PagesBounded = false;
  uint32_t PageBound = 0;
  /// Largest declared table element count. The feature set has no
  /// table.grow, so table sizes are static — growth-freedom is a fact.
  uint32_t TableElems = 0;
  std::vector<LintFinding> Lints;

  bool clean() const { return Lints.empty(); }
};

/// Per-function pass only (no interprocedural layer): cheap enough to run
/// per artifact inside the verifier path. \p F must be a validated,
/// module-defined function.
FuncFacts analyzeFunction(const Module &M, const FuncDecl &F);

/// Full module analysis: per-function pass + call graph + memory facts +
/// lints. \p M must be decoded and validated.
ModuleAnalysis analyzeModule(const Module &M);

// --- Report surfaces -----------------------------------------------------

/// Human-readable report (the `wisp --analyze` output).
std::string analysisReportText(const Module &M, const ModuleAnalysis &A,
                               const std::string &ModuleName);

/// Machine-readable JSON artifact sharing the serializer with
/// `wisp --audit --json`.
std::string analysisReportJson(const Module &M, const ModuleAnalysis &A,
                               const std::string &ModuleName);

// --- Admission precheck --------------------------------------------------

/// Decides whether a job provably cannot complete under the effective
/// governance caps: its memory/table declarations would be rejected at
/// load, or every trap-free execution of \p Invoke (or the start
/// function) must exceed the call-depth cap. Caps of 0 mean the engine
/// defaults (call depth 4096; pages bounded only by the architecture).
/// Returns true when the job must be rejected and fills \p Reason.
/// \p Invoke may be empty (checks only load-time and start-function
/// bounds) or name a missing export (not this function's concern — the
/// job will error at lookup).
bool staticBoundsReject(const Module &M, const ModuleAnalysis &A,
                        const std::string &Invoke, uint32_t MaxCallDepth,
                        uint32_t MaxMemoryPages, uint32_t MaxTableElems,
                        std::string *Reason);

} // namespace wisp

#endif // WISP_ANALYSIS_ANALYSIS_H
