//===- analysis/analysis.cpp - whole-module static analysis ----------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Two layers:
//
//   1. FuncScanner: a one-pass abstract interpreter over one validated
//      body, mirroring the validator's control/height walk (the same
//      discipline as the verifier's BodyScanner) but carrying an abstract
//      operand stack of known-constant values. One pass yields the
//      reachable operand-stack bound, loop/grow/call facts, the direct and
//      indirect call edges, the unconditional-prefix ("must") call set and
//      the site-level lints (guaranteed traps, dead br_table cases).
//
//   2. The interprocedural layer: a worklist reachability pass from the
//      module roots (exports, start, escaped function references), an
//      iterative Tarjan SCC pass for recursion detection, reverse
//      topological (Kahn) passes for the worst-case and guaranteed-minimum
//      call-depth bounds, and the module memory/table growth facts.
//
// Everything here is a *guarantee*: bounds are conservative upper bounds
// (fuzz-verified against observed execution on every differ seed), must-
// depths are conservative lower bounds, and lints only fire when the
// property holds on every possible execution.
//
//===----------------------------------------------------------------------===//

#include "analysis/analysis.h"

#include "support/format.h"
#include "support/json.h"
#include "wasm/codereader.h"
#include "wasm/opcodes.h"

#include <algorithm>
#include <deque>

using namespace wisp;

namespace {

/// Bytes per linear-memory page (kept local: the analysis library depends
/// only on the wasm layer, not the runtime).
constexpr uint64_t AnalysisPageSize = 65536;

/// Bytes touched by one memory access opcode; 0 = not a memory access.
uint32_t memAccessSize(Opcode Op) {
  switch (Op) {
  case Opcode::I32Load8S:
  case Opcode::I32Load8U:
  case Opcode::I64Load8S:
  case Opcode::I64Load8U:
  case Opcode::I32Store8:
  case Opcode::I64Store8:
    return 1;
  case Opcode::I32Load16S:
  case Opcode::I32Load16U:
  case Opcode::I64Load16S:
  case Opcode::I64Load16U:
  case Opcode::I32Store16:
  case Opcode::I64Store16:
    return 2;
  case Opcode::I32Load:
  case Opcode::F32Load:
  case Opcode::I64Load32S:
  case Opcode::I64Load32U:
  case Opcode::I32Store:
  case Opcode::F32Store:
  case Opcode::I64Store32:
    return 4;
  case Opcode::I64Load:
  case Opcode::F64Load:
  case Opcode::I64Store:
  case Opcode::F64Store:
    return 8;
  default:
    return 0;
  }
}

bool isIntDivOrRem(Opcode Op) {
  switch (Op) {
  case Opcode::I32DivS:
  case Opcode::I32DivU:
  case Opcode::I32RemS:
  case Opcode::I32RemU:
  case Opcode::I64DivS:
  case Opcode::I64DivU:
  case Opcode::I64RemS:
  case Opcode::I64RemU:
    return true;
  default:
    return false;
  }
}

/// One abstract operand: either a known constant bit pattern or Top.
struct AbsVal {
  bool Known = false;
  uint64_t Bits = 0;
};

/// Heights-only mirror of the validator's control frame, plus the dead-
/// context marker the lint layer needs (a frame opened inside dead code
/// stays dead even after `else` clears its own Unreachable flag).
struct AFrame {
  uint32_t Height = 0;
  uint32_t NParams = 0;
  uint32_t NResults = 0;
  bool IsLoop = false;
  bool Unreachable = false;
  bool DeadContext = false;

  uint32_t labelArity() const { return IsLoop ? NParams : NResults; }
};

class FuncScanner {
public:
  FuncScanner(const Module &M, const FuncDecl &F)
      : M(M), F(F), R(M.Bytes.data(), F.BodyStart, F.BodyEnd) {
    if (!M.Memories.empty()) {
      const Limits &L = M.Memories[0].Lim;
      MaxMemBytes =
          uint64_t(L.HasMax ? L.Max : MaxMemoryPages) * AnalysisPageSize;
    }
  }

  /// Runs the pass; bodies are validated, so a malformed body is a bug in
  /// this mirror, reported by zeroing the facts conservatively.
  FuncFacts run(std::vector<LintFinding> *Lints,
                std::vector<uint32_t> *IndirectTypes,
                std::vector<uint32_t> *RefFuncs,
                std::vector<uint32_t> *MustCallees);

private:
  bool live() const {
    const AFrame &C = Frames.back();
    return !C.Unreachable && !C.DeadContext;
  }
  void pop(uint32_t N) {
    AFrame &C = Frames.back();
    for (uint32_t I = 0; I < N; ++I) {
      if (Height > C.Height) {
        --Height;
        Stack.pop_back();
      }
    }
  }
  void pushUnknown(uint32_t N) {
    Height += N;
    Stack.resize(Height);
  }
  void pushConst(uint64_t Bits) {
    ++Height;
    Stack.push_back({true, Bits});
  }
  /// The abstract operand \p Depth slots below the top (0 = top). Top when
  /// the slot is clamped away in dead code.
  AbsVal peek(uint32_t Depth) const {
    if (Depth >= Stack.size())
      return {};
    return Stack[Stack.size() - 1 - Depth];
  }
  void markUnreachable() {
    Height = Frames.back().Height;
    Stack.resize(Height);
    Frames.back().Unreachable = true;
  }
  void noteHeight() {
    if (live() && Height > Facts.StackBound)
      Facts.StackBound = Height;
  }
  void endMustPrefix() { MustPrefix = false; }
  void lint(LintFinding::Kind K, uint32_t Ip, std::string Detail) {
    LintFinding L;
    L.K = K;
    L.FuncIndex = F.Index;
    L.Ip = Ip;
    L.Detail = std::move(Detail);
    Lints->push_back(std::move(L));
  }
  bool blockArity(uint32_t *NP, uint32_t *NR);
  bool scanOp(Opcode Op, uint32_t OpPos);

  const Module &M;
  const FuncDecl &F;
  CodeReader R;
  std::vector<AFrame> Frames;
  std::vector<AbsVal> Stack;
  uint32_t Height = 0;
  uint64_t MaxMemBytes = 0;
  bool Done = false;
  /// Still on the unconditional prefix: every opcode so far executes on
  /// every trap-free complete run of the function.
  bool MustPrefix = true;
  FuncFacts Facts;
  std::vector<LintFinding> *Lints = nullptr;
  std::vector<uint32_t> *IndirectTypes = nullptr;
  std::vector<uint32_t> *RefFuncs = nullptr;
  std::vector<uint32_t> *MustCallees = nullptr;
};

bool FuncScanner::blockArity(uint32_t *NP, uint32_t *NR) {
  BlockType BT = R.readBlockType();
  if (!R.ok())
    return false;
  switch (BT.K) {
  case BlockType::Empty:
    *NP = *NR = 0;
    return true;
  case BlockType::OneResult:
    *NP = 0;
    *NR = 1;
    return true;
  case BlockType::FuncTypeIdx:
    if (BT.TypeIdx >= M.Types.size())
      return false;
    *NP = uint32_t(M.Types[BT.TypeIdx].Params.size());
    *NR = uint32_t(M.Types[BT.TypeIdx].Results.size());
    return true;
  }
  return false;
}

bool FuncScanner::scanOp(Opcode Op, uint32_t OpPos) {
  const OpInfo &Info = opInfo(Op);
  if (!Info.Name)
    return false;

  if (Info.Class == OpClass::Simple) {
    uint32_t Offset = 0;
    switch (Info.Imm) {
    case ImmKind::MemArg: {
      MemArg A = R.readMemArg();
      Offset = A.Offset;
      break;
    }
    case ImmKind::MemIdx:
      (void)R.readByte();
      break;
    default:
      break;
    }
    if (!R.ok())
      return false;
    if (live()) {
      // Guaranteed-trap lints: a site that traps on every execution that
      // reaches it. Constant divisor of zero, or a constant-address
      // memory access that exceeds the largest memory this module can
      // ever hold (declared max, or the architecture page limit).
      if (isIntDivOrRem(Op)) {
        AbsVal Divisor = peek(0);
        uint64_t Mask = (Op >= Opcode::I64DivS) ? ~0ull : 0xffffffffull;
        if (Divisor.Known && (Divisor.Bits & Mask) == 0)
          lint(LintFinding::GuaranteedTrap, OpPos,
               strFormat("%s: divisor is constant 0 (guaranteed divide "
                         "trap)",
                         Info.Name));
      } else if (uint32_t Size = memAccessSize(Op)) {
        AbsVal Addr = peek(Info.NPop - 1); // Deepest popped operand.
        if (Addr.Known) {
          uint64_t Effective =
              (Addr.Bits & 0xffffffffull) + uint64_t(Offset) + Size;
          if (Effective > MaxMemBytes)
            lint(LintFinding::GuaranteedTrap, OpPos,
                 strFormat("%s: constant address 0x%llx + offset %u + "
                           "%u bytes exceeds the maximum possible memory "
                           "of %llu bytes (guaranteed out-of-bounds trap)",
                           Info.Name,
                           (unsigned long long)(Addr.Bits & 0xffffffffull),
                           Offset, Size, (unsigned long long)MaxMemBytes));
        }
      }
    }
    if (Op == Opcode::MemoryGrow)
      Facts.GrowsMemory = true;
    pop(Info.NPop);
    pushUnknown(Info.NPush ? 1 : 0);
    noteHeight();
    return true;
  }

  switch (Op) {
  case Opcode::Nop:
    return true;
  case Opcode::Unreachable:
    endMustPrefix();
    markUnreachable();
    return true;

  case Opcode::Block:
  case Opcode::Loop:
  case Opcode::If: {
    if (Op == Opcode::If) {
      pop(1);
      endMustPrefix();
    }
    if (Op == Opcode::Loop) {
      Facts.HasLoop = true;
      // Entering a loop still falls through into the body exactly once,
      // so the unconditional prefix continues (backedges only repeat it).
    }
    uint32_t NP = 0, NR = 0;
    if (!blockArity(&NP, &NR))
      return false;
    bool Dead = !live();
    pop(NP);
    AFrame C;
    C.Height = Height;
    C.NParams = NP;
    C.NResults = NR;
    C.IsLoop = Op == Opcode::Loop;
    C.DeadContext = Dead;
    Frames.push_back(C);
    pushUnknown(NP);
    noteHeight();
    return true;
  }

  case Opcode::Else: {
    AFrame C = Frames.back();
    Frames.pop_back();
    Height = C.Height + C.NParams;
    Stack.resize(Height);
    C.IsLoop = false;
    C.Unreachable = false;
    Frames.push_back(C);
    return true;
  }

  case Opcode::End: {
    AFrame C = Frames.back();
    Frames.pop_back();
    Height = C.Height;
    Stack.resize(Height);
    pushUnknown(C.NResults);
    if (Frames.empty())
      Done = true;
    else
      noteHeight();
    return true;
  }

  case Opcode::Br: {
    uint32_t Depth = R.readU32();
    if (!R.ok() || Depth >= Frames.size())
      return false;
    endMustPrefix();
    pop(Frames[Frames.size() - 1 - Depth].labelArity());
    markUnreachable();
    return true;
  }

  case Opcode::BrIf: {
    uint32_t Depth = R.readU32();
    if (!R.ok() || Depth >= Frames.size())
      return false;
    endMustPrefix();
    pop(1);
    return true;
  }

  case Opcode::BrTable: {
    uint32_t N = R.readU32();
    for (uint32_t I = 0; I < N; ++I)
      (void)R.readU32();
    uint32_t Default = R.readU32();
    if (!R.ok() || Default >= Frames.size())
      return false;
    if (live()) {
      AbsVal Sel = peek(0);
      if (Sel.Known && N > 0) {
        uint32_t K = uint32_t(Sel.Bits);
        uint32_t DeadCases = K < N ? N - 1 : N;
        lint(LintFinding::DeadBrTableCase, OpPos,
             strFormat("br_table: selector is constant %u, so %u of %u "
                       "case(s) can never be selected",
                       K, DeadCases, N));
      }
    }
    endMustPrefix();
    pop(1);
    pop(Frames[Frames.size() - 1 - Default].labelArity());
    markUnreachable();
    return true;
  }

  case Opcode::Return:
    endMustPrefix();
    pop(uint32_t(M.Types[F.TypeIdx].Results.size()));
    markUnreachable();
    return true;

  case Opcode::Call: {
    uint32_t Idx = R.readU32();
    if (!R.ok() || Idx >= M.Funcs.size())
      return false;
    if (live()) {
      Facts.Callees.push_back(Idx);
      if (MustPrefix)
        MustCallees->push_back(Idx);
    }
    const FuncType &FT = M.funcType(Idx);
    pop(uint32_t(FT.Params.size()));
    pushUnknown(uint32_t(FT.Results.size()));
    noteHeight();
    return true;
  }

  case Opcode::CallIndirect: {
    uint32_t TypeIdx = R.readU32();
    (void)R.readU32(); // Table index.
    if (!R.ok() || TypeIdx >= M.Types.size())
      return false;
    if (live()) {
      Facts.HasIndirectCall = true;
      IndirectTypes->push_back(TypeIdx);
    }
    const FuncType &FT = M.Types[TypeIdx];
    pop(1);
    pop(uint32_t(FT.Params.size()));
    pushUnknown(uint32_t(FT.Results.size()));
    noteHeight();
    return true;
  }

  case Opcode::Drop:
    pop(1);
    return true;
  case Opcode::Select:
    pop(3);
    pushUnknown(1);
    noteHeight();
    return true;
  case Opcode::SelectT: {
    uint32_t N = R.readU32();
    for (uint32_t I = 0; I < N; ++I)
      (void)R.readByte();
    if (!R.ok())
      return false;
    pop(3);
    pushUnknown(1);
    noteHeight();
    return true;
  }

  case Opcode::LocalGet:
  case Opcode::LocalSet:
  case Opcode::LocalTee: {
    uint32_t Idx = R.readU32();
    if (!R.ok() || Idx >= F.LocalTypes.size())
      return false;
    if (Op == Opcode::LocalGet) {
      pushUnknown(1);
      noteHeight();
    } else if (Op == Opcode::LocalSet) {
      pop(1);
    }
    return true;
  }

  case Opcode::GlobalGet:
  case Opcode::GlobalSet: {
    uint32_t Idx = R.readU32();
    if (!R.ok() || Idx >= M.Globals.size())
      return false;
    if (Op == Opcode::GlobalGet) {
      pushUnknown(1);
      noteHeight();
    } else {
      pop(1);
    }
    return true;
  }

  case Opcode::I32Const: {
    int32_t V = R.readS32();
    pushConst(uint64_t(uint32_t(V)));
    noteHeight();
    return R.ok();
  }
  case Opcode::I64Const: {
    int64_t V = R.readS64();
    pushConst(uint64_t(V));
    noteHeight();
    return R.ok();
  }
  case Opcode::F32Const:
    pushConst(uint64_t(R.readF32Bits()));
    noteHeight();
    return R.ok();
  case Opcode::F64Const:
    pushConst(R.readF64Bits());
    noteHeight();
    return R.ok();

  case Opcode::RefNull:
    (void)R.readValType();
    pushConst(0);
    noteHeight();
    return R.ok();
  case Opcode::RefIsNull:
    pop(1);
    pushUnknown(1);
    noteHeight();
    return true;
  case Opcode::RefFunc: {
    uint32_t Idx = R.readU32();
    if (!R.ok())
      return false;
    if (live() && Idx < M.Funcs.size())
      RefFuncs->push_back(Idx);
    pushUnknown(1);
    noteHeight();
    return true;
  }

  case Opcode::MemoryCopy:
    (void)R.readByte();
    (void)R.readByte();
    pop(3);
    return true;
  case Opcode::MemoryFill:
    (void)R.readByte();
    pop(3);
    return true;

  default:
    return false;
  }
}

FuncFacts FuncScanner::run(std::vector<LintFinding> *OutLints,
                           std::vector<uint32_t> *OutIndirectTypes,
                           std::vector<uint32_t> *OutRefFuncs,
                           std::vector<uint32_t> *OutMustCallees) {
  std::vector<LintFinding> LocalLints;
  std::vector<uint32_t> LocalU32A, LocalU32B, LocalU32C;
  Lints = OutLints ? OutLints : &LocalLints;
  IndirectTypes = OutIndirectTypes ? OutIndirectTypes : &LocalU32A;
  RefFuncs = OutRefFuncs ? OutRefFuncs : &LocalU32B;
  MustCallees = OutMustCallees ? OutMustCallees : &LocalU32C;

  Facts.FuncIndex = F.Index;
  Facts.Imported = F.Imported;
  if (F.Imported)
    return Facts;

  AFrame Root;
  Root.NResults = uint32_t(M.Types[F.TypeIdx].Results.size());
  Frames.push_back(Root);

  while (!Done) {
    if (R.atEnd())
      break; // Validated bodies always terminate; bail conservatively.
    uint32_t OpPos = uint32_t(R.pc());
    Opcode Op = R.readOpcode();
    if (!R.ok() || !scanOp(Op, OpPos))
      break;
  }

  std::sort(Facts.Callees.begin(), Facts.Callees.end());
  Facts.Callees.erase(std::unique(Facts.Callees.begin(), Facts.Callees.end()),
                      Facts.Callees.end());
  Facts.FrameSlotBound = F.numLocalSlots() + Facts.StackBound;
  return Facts;
}

/// Per-function scratch the interprocedural layer needs beyond FuncFacts.
struct FuncExtra {
  std::vector<uint32_t> IndirectTypes; ///< call_indirect type indices.
  std::vector<uint32_t> RefFuncs;      ///< ref.func targets in the body.
  std::vector<uint32_t> MustCallees;   ///< Unconditional-prefix callees.
};

/// Reverse-topological (Kahn) bound propagation over \p Edges: depth(f) =
/// 1 + max over callees' depth, imported callees contributing 0. Returns
/// per-function depths; functions that are part of or can reach a cycle
/// keep \p Unbounded.
std::vector<uint32_t>
propagateDepths(const Module &M,
                const std::vector<std::vector<uint32_t>> &Edges,
                uint32_t Unbounded) {
  size_t N = M.Funcs.size();
  std::vector<uint32_t> Depth(N, Unbounded);
  std::vector<std::vector<uint32_t>> Callers(N);
  std::vector<uint32_t> OutDeg(N, 0);
  for (uint32_t F = 0; F < N; ++F) {
    if (M.Funcs[F].Imported) {
      Depth[F] = 0; // Host calls push no wasm frame and never re-enter.
      continue;
    }
    for (uint32_t G : Edges[F]) {
      if (M.Funcs[G].Imported)
        continue; // Contributes depth 0; not an ordering edge.
      ++OutDeg[F];
      Callers[G].push_back(F);
    }
  }
  std::deque<uint32_t> Ready;
  for (uint32_t F = 0; F < N; ++F)
    if (!M.Funcs[F].Imported && OutDeg[F] == 0)
      Ready.push_back(F);
  while (!Ready.empty()) {
    uint32_t F = Ready.front();
    Ready.pop_front();
    uint32_t D = 1;
    for (uint32_t G : Edges[F])
      if (!M.Funcs[G].Imported && Depth[G] != Unbounded && Depth[G] + 1 > D)
        D = Depth[G] + 1;
    Depth[F] = D;
    for (uint32_t C : Callers[F])
      if (--OutDeg[C] == 0)
        Ready.push_back(C);
  }
  return Depth;
}

/// Iterative Tarjan SCC over \p Edges (imported nodes excluded); marks
/// every function in a cycle (SCC size > 1, or a self-edge).
std::vector<bool>
recursiveSccMembers(const Module &M,
                    const std::vector<std::vector<uint32_t>> &Edges) {
  size_t N = M.Funcs.size();
  std::vector<bool> InCycle(N, false);
  std::vector<uint32_t> Index(N, 0), Low(N, 0);
  std::vector<bool> Visited(N, false), OnStack(N, false);
  std::vector<uint32_t> Stack;
  uint32_t Next = 1;

  struct WorkItem {
    uint32_t F;
    size_t EdgeIdx;
  };
  for (uint32_t Root = 0; Root < N; ++Root) {
    if (Visited[Root] || M.Funcs[Root].Imported)
      continue;
    std::vector<WorkItem> Work{{Root, 0}};
    while (!Work.empty()) {
      WorkItem &W = Work.back();
      uint32_t F = W.F;
      if (W.EdgeIdx == 0) {
        Visited[F] = true;
        Index[F] = Low[F] = Next++;
        Stack.push_back(F);
        OnStack[F] = true;
      }
      bool Descended = false;
      while (W.EdgeIdx < Edges[F].size()) {
        uint32_t G = Edges[F][W.EdgeIdx++];
        if (M.Funcs[G].Imported)
          continue;
        if (!Visited[G]) {
          Work.push_back({G, 0});
          Descended = true;
          break;
        }
        if (OnStack[G])
          Low[F] = std::min(Low[F], Index[G]);
      }
      if (Descended)
        continue;
      if (Low[F] == Index[F]) {
        // Pop the SCC rooted at F.
        std::vector<uint32_t> Scc;
        for (;;) {
          uint32_t G = Stack.back();
          Stack.pop_back();
          OnStack[G] = false;
          Scc.push_back(G);
          if (G == F)
            break;
        }
        bool SelfEdge =
            Scc.size() == 1 &&
            std::find(Edges[F].begin(), Edges[F].end(), F) != Edges[F].end();
        if (Scc.size() > 1 || SelfEdge)
          for (uint32_t G : Scc)
            InCycle[G] = true;
      }
      Work.pop_back();
      if (!Work.empty()) {
        WorkItem &Parent = Work.back();
        Low[Parent.F] = std::min(Low[Parent.F], Low[F]);
      }
    }
  }
  return InCycle;
}

} // namespace

const char *wisp::lintKindName(LintFinding::Kind K) {
  switch (K) {
  case LintFinding::UnreachableFunc:
    return "unreachable-func";
  case LintFinding::GuaranteedTrap:
    return "guaranteed-trap";
  case LintFinding::DeadBrTableCase:
    return "dead-br-table-case";
  }
  return "unknown";
}

FuncFacts wisp::analyzeFunction(const Module &M, const FuncDecl &F) {
  FuncScanner S(M, F);
  return S.run(nullptr, nullptr, nullptr, nullptr);
}

ModuleAnalysis wisp::analyzeModule(const Module &M) {
  ModuleAnalysis A;
  size_t N = M.Funcs.size();
  A.Funcs.reserve(N);
  std::vector<FuncExtra> Extra(N);
  std::vector<LintFinding> SiteLints;
  for (uint32_t I = 0; I < N; ++I) {
    FuncScanner S(M, M.Funcs[I]);
    A.Funcs.push_back(S.run(&SiteLints, &Extra[I].IndirectTypes,
                            &Extra[I].RefFuncs, &Extra[I].MustCallees));
  }

  // --- Static table contents: every function an indirect call could hit.
  std::vector<uint32_t> ElemFuncs;
  for (const ElemSegment &E : M.Elems)
    ElemFuncs.insert(ElemFuncs.end(), E.FuncIndices.begin(),
                     E.FuncIndices.end());
  std::sort(ElemFuncs.begin(), ElemFuncs.end());
  ElemFuncs.erase(std::unique(ElemFuncs.begin(), ElemFuncs.end()),
                  ElemFuncs.end());

  // --- Full conservative edge set: direct callees plus, for functions
  // with indirect calls, every type-compatible table-segment function
  // (call_indirect checks structural type equality at run time, so the
  // type filter is sound).
  std::vector<std::vector<uint32_t>> Edges(N);
  for (uint32_t I = 0; I < N; ++I) {
    Edges[I] = A.Funcs[I].Callees;
    for (uint32_t T : Extra[I].IndirectTypes)
      for (uint32_t E : ElemFuncs)
        if (M.Types[T] == M.funcType(E))
          Edges[I].push_back(E);
    std::sort(Edges[I].begin(), Edges[I].end());
    Edges[I].erase(std::unique(Edges[I].begin(), Edges[I].end()),
                   Edges[I].end());
  }

  // --- Reachability from the module roots.
  std::vector<bool> Reach(N, false);
  std::deque<uint32_t> Work;
  auto AddRoot = [&](uint32_t F) {
    if (F < N && !Reach[F]) {
      Reach[F] = true;
      Work.push_back(F);
    }
  };
  for (const Export &E : M.Exports)
    if (E.Kind == ExternKind::Func)
      AddRoot(E.Index);
  if (M.Start)
    AddRoot(*M.Start);
  for (const GlobalDecl &G : M.Globals)
    if (!G.Imported && G.Init.K == InitExpr::RefFuncIdx)
      AddRoot(G.Init.Index); // The reference escapes at instantiation.
  // Imported functions are host-provided; "unreachable" is not a
  // meaningful lint for them and execution never enters them as wasm.
  for (uint32_t I = 0; I < N; ++I)
    if (M.Funcs[I].Imported)
      Reach[I] = true;
  while (!Work.empty()) {
    uint32_t F = Work.front();
    Work.pop_front();
    for (uint32_t G : Edges[F])
      AddRoot(G);
    for (uint32_t G : Extra[F].RefFuncs)
      AddRoot(G); // Escaped references may be called from anywhere.
  }
  for (uint32_t I = 0; I < N; ++I)
    A.Funcs[I].Reachable = Reach[I];

  // --- Recursion detection and call-depth bounds.
  std::vector<bool> InCycle = recursiveSccMembers(M, Edges);
  A.RecursionFree = true;
  for (uint32_t I = 0; I < N; ++I) {
    A.Funcs[I].InRecursiveScc = InCycle[I];
    if (InCycle[I])
      A.RecursionFree = false;
  }
  std::vector<uint32_t> Depth =
      propagateDepths(M, Edges, AnalysisDepthInfinite);
  std::vector<std::vector<uint32_t>> MustEdges(N);
  for (uint32_t I = 0; I < N; ++I)
    MustEdges[I] = Extra[I].MustCallees;
  std::vector<uint32_t> MustDepth =
      propagateDepths(M, MustEdges, AnalysisDepthInfinite);
  A.DepthBounded = true;
  for (uint32_t I = 0; I < N; ++I) {
    FuncFacts &FF = A.Funcs[I];
    FF.DepthBounded = Depth[I] != AnalysisDepthInfinite;
    FF.DepthBound = FF.DepthBounded ? Depth[I] : 0;
    FF.MustDepth = M.Funcs[I].Imported ? 0 : MustDepth[I];
    if (!M.Funcs[I].Imported && Reach[I]) {
      if (!FF.DepthBounded)
        A.DepthBounded = false;
      else if (FF.DepthBound > A.DepthBound)
        A.DepthBound = FF.DepthBound;
    }
  }
  if (!A.DepthBounded)
    A.DepthBound = 0;

  // --- Loop freedom and memory-page bounds (reachable code only: dead
  // functions never execute, and the reachability set is conservative).
  A.LoopFree = true;
  for (uint32_t I = 0; I < N; ++I)
    if (Reach[I] && !M.Funcs[I].Imported) {
      if (A.Funcs[I].HasLoop)
        A.LoopFree = false;
      if (A.Funcs[I].GrowsMemory)
        A.GrowsMemory = true;
    }
  A.HasMemory = !M.Memories.empty();
  if (A.HasMemory) {
    const Limits &L = M.Memories[0].Lim;
    A.MinPages = L.Min;
    if (!A.GrowsMemory) {
      // Host functions never grow wasm linear memory, and the feature set
      // has no other growth channel: the declared min is the bound.
      A.PagesBounded = true;
      A.PageBound = L.Min;
    } else if (L.HasMax) {
      A.PagesBounded = true;
      A.PageBound = L.Max;
    }
  } else {
    A.PagesBounded = true;
    A.PageBound = 0;
  }
  for (const TableDecl &T : M.Tables)
    A.TableElems = std::max(A.TableElems, T.Lim.Min);

  // --- Lints: function-level first (stable order), then site lints in
  // (function, pc) order.
  for (uint32_t I = 0; I < N; ++I)
    if (!M.Funcs[I].Imported && !Reach[I]) {
      LintFinding L;
      L.K = LintFinding::UnreachableFunc;
      L.FuncIndex = I;
      L.Ip = M.Funcs[I].BodyStart;
      L.Detail = strFormat("func %u is statically unreachable (no call "
                           "path from any export, start function or "
                           "escaped reference)",
                           I);
      A.Lints.push_back(std::move(L));
    }
  std::stable_sort(SiteLints.begin(), SiteLints.end(),
                   [](const LintFinding &X, const LintFinding &Y) {
                     return X.FuncIndex != Y.FuncIndex
                                ? X.FuncIndex < Y.FuncIndex
                                : X.Ip < Y.Ip;
                   });
  for (LintFinding &L : SiteLints)
    A.Lints.push_back(std::move(L));
  return A;
}

// --- Admission precheck ----------------------------------------------------

bool wisp::staticBoundsReject(const Module &M, const ModuleAnalysis &A,
                              const std::string &Invoke, uint32_t MaxCallDepth,
                              uint32_t MaxMemoryPages, uint32_t MaxTableElems,
                              std::string *Reason) {
  // Load-time certainties first: these mirror Engine::load's governance
  // rejects exactly (a reject here must be a reject there, or the escape
  // hatch would change observable behavior).
  if (MaxMemoryPages && A.HasMemory && A.MinPages > MaxMemoryPages) {
    *Reason = strFormat("declared memory min %u pages exceeds the %u-page "
                        "cap",
                        A.MinPages, MaxMemoryPages);
    return true;
  }
  if (MaxTableElems)
    for (const TableDecl &T : M.Tables)
      if (T.Lim.Min > MaxTableElems) {
        *Reason = strFormat("declared table min %u elems exceeds the "
                            "%u-elem cap",
                            T.Lim.Min, MaxTableElems);
        return true;
      }

  // Guaranteed call-depth blowouts: every trap-free complete execution of
  // the entry reaches at least MustDepth frames, so MustDepth > cap means
  // the job cannot finish without trapping. The start function runs at
  // instantiation and is checked the same way.
  uint32_t DepthCap = MaxCallDepth ? MaxCallDepth : 4096;
  auto MustBlow = [&](uint32_t FuncIdx, const char *What) {
    if (FuncIdx >= A.Funcs.size())
      return false;
    uint32_t D = A.Funcs[FuncIdx].MustDepth;
    if (D == AnalysisDepthInfinite) {
      *Reason = strFormat("%s func %u recurses unconditionally: guaranteed "
                          "to exhaust any call-depth cap (cap %u)",
                          What, FuncIdx, DepthCap);
      return true;
    }
    if (D > DepthCap) {
      *Reason = strFormat("%s func %u must reach call depth %u, exceeding "
                          "the %u-frame cap",
                          What, FuncIdx, D, DepthCap);
      return true;
    }
    return false;
  };
  if (M.Start && MustBlow(*M.Start, "start"))
    return true;
  if (!Invoke.empty())
    if (const Export *E = M.findExport(Invoke, ExternKind::Func))
      if (MustBlow(E->Index, "invoked"))
        return true;
  return false;
}

// --- Report surfaces -------------------------------------------------------

std::string wisp::analysisReportText(const Module &M, const ModuleAnalysis &A,
                                     const std::string &ModuleName) {
  std::string Out;
  Out += strFormat("static analysis: %s\n", ModuleName.c_str());
  uint32_t Defined = 0;
  for (const FuncDecl &F : M.Funcs)
    if (!F.Imported)
      ++Defined;
  Out += strFormat("  funcs: %zu (%u defined, %u imported)\n", M.Funcs.size(),
                   Defined, M.NumImportedFuncs);
  Out += strFormat("  call graph: %s", A.RecursionFree
                                           ? "recursion-free"
                                           : "recursive (cycle detected)");
  if (A.DepthBounded)
    Out += strFormat(", worst-case call depth %u\n", A.DepthBound);
  else
    Out += ", call depth unbounded\n";
  Out += strFormat("  loops: %s\n",
                   A.LoopFree ? "none reachable (loop-free)" : "present");
  if (!A.HasMemory)
    Out += "  memory: none\n";
  else if (A.PagesBounded)
    Out += strFormat("  memory: min %u pages, %s, bound %u pages\n",
                     A.MinPages,
                     A.GrowsMemory ? "grows (declared max)" : "never grows",
                     A.PageBound);
  else
    Out += strFormat("  memory: min %u pages, grows, no declared max "
                     "(unbounded)\n",
                     A.MinPages);
  Out += strFormat("  tables: %zu, %u elems max, growth-free by "
                   "construction\n",
                   M.Tables.size(), A.TableElems);
  Out += "  per-function bounds (stack slots / frame slots / depth):\n";
  for (const FuncFacts &F : A.Funcs) {
    if (F.Imported)
      continue;
    Out += strFormat("    func %u: stack<=%u frame<=%u", F.FuncIndex,
                     F.StackBound, F.FrameSlotBound);
    if (F.DepthBounded)
      Out += strFormat(" depth<=%u", F.DepthBound);
    else
      Out += " depth=unbounded";
    if (F.MustDepth == AnalysisDepthInfinite)
      Out += " must-depth=inf";
    else if (F.MustDepth > 1)
      Out += strFormat(" must-depth>=%u", F.MustDepth);
    if (F.HasLoop)
      Out += " loops";
    if (F.GrowsMemory)
      Out += " grows-memory";
    if (F.InRecursiveScc)
      Out += " recursive";
    if (!F.Reachable)
      Out += " UNREACHABLE";
    Out += "\n";
  }
  if (A.Lints.empty()) {
    Out += "  lints: none\n";
  } else {
    Out += strFormat("  lints: %zu finding(s)\n", A.Lints.size());
    for (const LintFinding &L : A.Lints)
      Out += strFormat("    [%s] func %u +0x%x: %s\n", lintKindName(L.K),
                       L.FuncIndex, L.Ip, L.Detail.c_str());
  }
  return Out;
}

std::string wisp::analysisReportJson(const Module &M, const ModuleAnalysis &A,
                                     const std::string &ModuleName) {
  JsonWriter W;
  W.obj();
  W.str("module", ModuleName);
  W.num("funcs", uint64_t(M.Funcs.size()));
  W.boolean("recursion_free", A.RecursionFree);
  W.boolean("loop_free", A.LoopFree);
  W.boolean("depth_bounded", A.DepthBounded);
  W.num("depth_bound", A.DepthBound);
  W.boolean("has_memory", A.HasMemory);
  W.num("min_pages", A.MinPages);
  W.boolean("grows_memory", A.GrowsMemory);
  W.boolean("pages_bounded", A.PagesBounded);
  W.num("page_bound", A.PageBound);
  W.num("table_elems", A.TableElems);
  W.keyArr("functions");
  for (const FuncFacts &F : A.Funcs) {
    if (F.Imported)
      continue;
    W.obj();
    W.num("index", F.FuncIndex);
    W.num("stack_bound", F.StackBound);
    W.num("frame_slot_bound", F.FrameSlotBound);
    W.boolean("depth_bounded", F.DepthBounded);
    W.num("depth_bound", F.DepthBound);
    if (F.MustDepth == AnalysisDepthInfinite)
      W.str("must_depth", "inf");
    else
      W.num("must_depth", F.MustDepth);
    W.boolean("has_loop", F.HasLoop);
    W.boolean("grows_memory", F.GrowsMemory);
    W.boolean("recursive", F.InRecursiveScc);
    W.boolean("reachable", F.Reachable);
    W.closeObj();
  }
  W.closeArr();
  W.keyArr("lints");
  for (const LintFinding &L : A.Lints) {
    W.obj();
    W.str("kind", lintKindName(L.K));
    W.num("func", L.FuncIndex);
    W.num("pc", L.Ip);
    W.str("detail", L.Detail);
    W.closeObj();
  }
  W.closeArr();
  W.closeObj();
  std::string Out = W.take();
  Out += "\n";
  return Out;
}
