//===- verify/verifier.cpp - static artifact verification -------------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Two passes per artifact:
//
//   1. BodyScan: a heights-only mirror of the wasm validator's walk over
//      the (already validated) body, recording for every opcode boundary
//      its opcode, the operand-stack height at entry, the side-table
//      position at entry, and the first scalar immediate. This re-derives
//      exactly the coordinates the compilers consumed.
//   2. The artifact checks proper: structural per-instruction checks, a
//      machine-CFG reachability walk, and the metadata cross-checks listed
//      in verifier.h, each producing a VerifyFinding with the offending
//      pc/unit and a precise description.
//
//===----------------------------------------------------------------------===//

#include "verify/verifier.h"

#include "support/format.h"
#include "wasm/codereader.h"
#include "wasm/opcodes.h"

#include <algorithm>
#include <map>

using namespace wisp;

namespace {

/// Per-function finding cap: a corrupted artifact tends to violate one
/// invariant hundreds of times; the first few locate the defect.
constexpr size_t MaxFindings = 32;

// --- BodyScan: re-derive the validator's per-opcode coordinates ----------

/// Validator-view coordinates of one opcode boundary.
struct OpSite {
  Opcode Op = Opcode::Nop;
  uint32_t Height = 0; ///< Operand-stack height at entry (locals excluded).
  uint32_t Stp = 0;    ///< Side-table position at entry.
  uint32_t ImmA = 0;   ///< First scalar immediate (call/local/global index).
};

/// The scan result: every opcode boundary of the body, keyed by offset.
struct BodyScan {
  bool Ok = false;
  std::string Error;
  std::map<uint32_t, OpSite> Sites;
  uint32_t TermEndIp = 0; ///< Offset of the function-terminating `end`.

  const OpSite *at(uint32_t Ip) const {
    auto It = Sites.find(Ip);
    return It == Sites.end() ? nullptr : &It->second;
  }
};

/// Heights-only mirror of the validator's control frame.
struct ScanFrame {
  uint32_t Height = 0; ///< Operand height just below the frame's params.
  uint32_t NParams = 0;
  uint32_t NResults = 0;
  bool IsLoop = false;
  bool Unreachable = false;

  uint32_t labelArity() const { return IsLoop ? NParams : NResults; }
};

class BodyScanner {
public:
  BodyScanner(const Module &M, const FuncDecl &F)
      : M(M), F(F), R(M.Bytes.data(), F.BodyStart, F.BodyEnd) {}

  BodyScan run();

private:
  bool fail(const char *Fmt, ...);
  bool blockArity(uint32_t *NP, uint32_t *NR);
  void pop(uint32_t N) {
    ScanFrame &C = Frames.back();
    for (uint32_t I = 0; I < N; ++I) {
      if (Height > C.Height)
        --Height; // Clamp at the frame base in unreachable code, exactly
      // as the validator's stack-polymorphic popAny does.
    }
  }
  void push(uint32_t N) { Height += N; }
  void markUnreachable() {
    Height = Frames.back().Height;
    Frames.back().Unreachable = true;
  }
  bool scanOp(Opcode Op, size_t OpPos);

  const Module &M;
  const FuncDecl &F;
  CodeReader R;
  BodyScan Out;
  std::vector<ScanFrame> Frames;
  uint32_t Height = 0;
  uint32_t CurStp = 0;
  bool Done = false;
};

bool BodyScanner::fail(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  Out.Error = strFormatV(Fmt, Args);
  va_end(Args);
  return false;
}

bool BodyScanner::blockArity(uint32_t *NP, uint32_t *NR) {
  BlockType BT = R.readBlockType();
  if (!R.ok())
    return fail("malformed block type");
  switch (BT.K) {
  case BlockType::Empty:
    *NP = *NR = 0;
    return true;
  case BlockType::OneResult:
    *NP = 0;
    *NR = 1;
    return true;
  case BlockType::FuncTypeIdx:
    if (BT.TypeIdx >= M.Types.size())
      return fail("block type index out of range");
    *NP = uint32_t(M.Types[BT.TypeIdx].Params.size());
    *NR = uint32_t(M.Types[BT.TypeIdx].Results.size());
    return true;
  }
  return fail("bad block type");
}

bool BodyScanner::scanOp(Opcode Op, size_t OpPos) {
  const OpInfo &Info = opInfo(Op);
  if (!Info.Name)
    return fail("unknown opcode at %zu", OpPos);

  if (Info.Class == OpClass::Simple) {
    switch (Info.Imm) {
    case ImmKind::MemArg:
      (void)R.readMemArg();
      break;
    case ImmKind::MemIdx:
      (void)R.readByte();
      break;
    default:
      break;
    }
    pop(Info.NPop);
    push(Info.NPush ? 1 : 0);
    return R.ok() || fail("malformed immediates at %zu", OpPos);
  }

  switch (Op) {
  case Opcode::Nop:
    return true;
  case Opcode::Unreachable:
    markUnreachable();
    return true;

  case Opcode::Block:
  case Opcode::Loop:
  case Opcode::If: {
    if (Op == Opcode::If) {
      pop(1);
      ++CurStp; // The false-edge side-table entry.
    }
    uint32_t NP = 0, NR = 0;
    if (!blockArity(&NP, &NR))
      return false;
    pop(NP);
    ScanFrame C;
    C.Height = Height;
    C.NParams = NP;
    C.NResults = NR;
    C.IsLoop = Op == Opcode::Loop;
    Frames.push_back(C);
    push(NP);
    return true;
  }

  case Opcode::Else: {
    ++CurStp; // The else-skip side-table entry.
    ScanFrame C = Frames.back();
    Frames.pop_back();
    Height = C.Height + C.NParams;
    C.IsLoop = false;
    C.Unreachable = false;
    Frames.push_back(C);
    return true;
  }

  case Opcode::End: {
    ScanFrame C = Frames.back();
    Frames.pop_back();
    Height = C.Height;
    push(C.NResults);
    if (Frames.empty()) {
      Out.TermEndIp = uint32_t(OpPos);
      Done = true;
    }
    return true;
  }

  case Opcode::Br: {
    uint32_t Depth = R.readU32();
    if (!R.ok() || Depth >= Frames.size())
      return fail("bad branch depth at %zu", OpPos);
    ++CurStp;
    pop(Frames[Frames.size() - 1 - Depth].labelArity());
    markUnreachable();
    return true;
  }

  case Opcode::BrIf: {
    uint32_t Depth = R.readU32();
    if (!R.ok() || Depth >= Frames.size())
      return fail("bad branch depth at %zu", OpPos);
    ++CurStp;
    pop(1); // Condition; the label values are popped and re-pushed.
    return true;
  }

  case Opcode::BrTable: {
    uint32_t N = R.readU32();
    for (uint32_t I = 0; I < N; ++I)
      (void)R.readU32();
    uint32_t Default = R.readU32();
    if (!R.ok() || Default >= Frames.size())
      return fail("bad br_table at %zu", OpPos);
    CurStp += N + 1;
    pop(1);
    pop(Frames[Frames.size() - 1 - Default].labelArity());
    markUnreachable();
    return true;
  }

  case Opcode::Return:
    pop(uint32_t(M.Types[F.TypeIdx].Results.size()));
    markUnreachable();
    return true;

  case Opcode::Call: {
    uint32_t Idx = R.readU32();
    if (!R.ok() || Idx >= M.Funcs.size())
      return fail("bad call index at %zu", OpPos);
    Out.Sites[uint32_t(OpPos)].ImmA = Idx;
    const FuncType &FT = M.funcType(Idx);
    pop(uint32_t(FT.Params.size()));
    push(uint32_t(FT.Results.size()));
    return true;
  }

  case Opcode::CallIndirect: {
    uint32_t TypeIdx = R.readU32();
    (void)R.readU32(); // Table index.
    if (!R.ok() || TypeIdx >= M.Types.size())
      return fail("bad call_indirect type at %zu", OpPos);
    Out.Sites[uint32_t(OpPos)].ImmA = TypeIdx;
    const FuncType &FT = M.Types[TypeIdx];
    pop(1); // Table element index.
    pop(uint32_t(FT.Params.size()));
    push(uint32_t(FT.Results.size()));
    return true;
  }

  case Opcode::Drop:
    pop(1);
    return true;
  case Opcode::Select:
    pop(3);
    push(1);
    return true;
  case Opcode::SelectT: {
    uint32_t N = R.readU32();
    for (uint32_t I = 0; I < N; ++I)
      (void)R.readByte();
    if (!R.ok())
      return fail("malformed select_t at %zu", OpPos);
    pop(3);
    push(1);
    return true;
  }

  case Opcode::LocalGet:
  case Opcode::LocalSet:
  case Opcode::LocalTee: {
    uint32_t Idx = R.readU32();
    if (!R.ok() || Idx >= F.LocalTypes.size())
      return fail("bad local index at %zu", OpPos);
    Out.Sites[uint32_t(OpPos)].ImmA = Idx;
    if (Op == Opcode::LocalGet)
      push(1);
    else if (Op == Opcode::LocalSet)
      pop(1);
    return true;
  }

  case Opcode::GlobalGet:
  case Opcode::GlobalSet: {
    uint32_t Idx = R.readU32();
    if (!R.ok() || Idx >= M.Globals.size())
      return fail("bad global index at %zu", OpPos);
    Out.Sites[uint32_t(OpPos)].ImmA = Idx;
    if (Op == Opcode::GlobalGet)
      push(1);
    else
      pop(1);
    return true;
  }

  case Opcode::I32Const:
    (void)R.readS32();
    push(1);
    return R.ok() || fail("malformed constant at %zu", OpPos);
  case Opcode::I64Const:
    (void)R.readS64();
    push(1);
    return R.ok() || fail("malformed constant at %zu", OpPos);
  case Opcode::F32Const:
    (void)R.readF32Bits();
    push(1);
    return R.ok() || fail("malformed constant at %zu", OpPos);
  case Opcode::F64Const:
    (void)R.readF64Bits();
    push(1);
    return R.ok() || fail("malformed constant at %zu", OpPos);

  case Opcode::RefNull:
    (void)R.readValType();
    push(1);
    return R.ok() || fail("malformed ref.null at %zu", OpPos);
  case Opcode::RefIsNull:
    pop(1);
    push(1);
    return true;
  case Opcode::RefFunc:
    (void)R.readU32();
    push(1);
    return R.ok() || fail("malformed ref.func at %zu", OpPos);

  case Opcode::MemoryCopy:
    (void)R.readByte();
    (void)R.readByte();
    pop(3);
    return true;
  case Opcode::MemoryFill:
    (void)R.readByte();
    pop(3);
    return true;

  default:
    return fail("unhandled opcode %s at %zu", opName(Op), OpPos);
  }
}

BodyScan BodyScanner::run() {
  ScanFrame Root;
  Root.NResults = uint32_t(M.Types[F.TypeIdx].Results.size());
  Frames.push_back(Root);

  while (!Done) {
    if (R.atEnd()) {
      Out.Error = "body not terminated";
      return std::move(Out);
    }
    size_t OpPos = R.pc();
    Opcode Op = R.readOpcode();
    if (!R.ok()) {
      Out.Error = "malformed opcode";
      return std::move(Out);
    }
    OpSite &S = Out.Sites[uint32_t(OpPos)];
    S.Op = Op;
    S.Height = Height;
    S.Stp = CurStp;
    if (!scanOp(Op, OpPos))
      return std::move(Out);
  }
  Out.Ok = true;
  return std::move(Out);
}

// --- Machine-code checks -------------------------------------------------

/// Machine instructions that can fault at run time and therefore need
/// trap-site attribution through the line table.
bool mopCanTrap(MOp Op) {
  switch (Op) {
  case MOp::DivS32:
  case MOp::DivU32:
  case MOp::RemS32:
  case MOp::RemU32:
  case MOp::DivS64:
  case MOp::DivU64:
  case MOp::RemS64:
  case MOp::RemU64:
  case MOp::TruncF32I32S:
  case MOp::TruncF32I32U:
  case MOp::TruncF64I32S:
  case MOp::TruncF64I32U:
  case MOp::TruncF32I64S:
  case MOp::TruncF32I64U:
  case MOp::TruncF64I64S:
  case MOp::TruncF64I64U:
  case MOp::LdM8S32:
  case MOp::LdM8U32:
  case MOp::LdM16S32:
  case MOp::LdM16U32:
  case MOp::LdM32:
  case MOp::LdM8S64:
  case MOp::LdM8U64:
  case MOp::LdM16S64:
  case MOp::LdM16U64:
  case MOp::LdM32S64:
  case MOp::LdM32U64:
  case MOp::LdM64:
  case MOp::LdMF32:
  case MOp::LdMF64:
  case MOp::StM8:
  case MOp::StM16:
  case MOp::StM32:
  case MOp::StM64:
  case MOp::StMF32:
  case MOp::StMF64:
  case MOp::MemCopy:
  case MOp::MemFill:
  case MOp::CallDirect:
  case MOp::CallIndirect:
  case MOp::TrapOp:
    return true;
  default:
    return false;
  }
}

/// Whether the bytecode opcode covering a trapping machine instruction is
/// a plausible trap site for it. Division/truncation/memory instructions
/// require a trap-capable opcode; the special-class opcodes (which OpInfo
/// does not mark CanTrap) are matched by family.
bool trapCoverCompatible(MOp MO, Opcode Cover) {
  switch (MO) {
  case MOp::CallDirect:
    return Cover == Opcode::Call;
  case MOp::CallIndirect:
    return Cover == Opcode::CallIndirect;
  case MOp::MemCopy:
    return Cover == Opcode::MemoryCopy;
  case MOp::MemFill:
    return Cover == Opcode::MemoryFill;
  case MOp::TrapOp:
    // Explicit traps come from `unreachable` or from constant-folded
    // always-trapping arithmetic (e.g. a literal division by zero).
    return Cover == Opcode::Unreachable || opInfo(Cover).CanTrap;
  default:
    return opInfo(Cover).CanTrap;
  }
}

class MCodeVerifier {
public:
  MCodeVerifier(const Module &M, const FuncDecl &F, const MCode &Code,
                const VerifyScope &Scope, const BodyScan &Scan,
                VerifyReport &Rep)
      : M(M), F(F), Code(Code), Scope(Scope), Scan(Scan), Rep(Rep),
        NL(F.numLocalSlots()), N(uint32_t(Code.Insts.size())) {}

  void run();

private:
  void finding(const char *Check, uint32_t Pc, std::string Detail) {
    if (Rep.Findings.size() < MaxFindings)
      Rep.Findings.push_back({Check, Pc, std::move(Detail)});
  }
  bool boundary(uint32_t Ip) const { return Scan.at(Ip) != nullptr; }

  void checkFrameAndInsts();
  void checkInst(uint32_t Pc, const MInst &I);
  void computeReachability();
  void checkLineTable();
  void checkPatchPoints();
  void checkTrapCoverage();
  void checkCallAndProbeShape();
  void checkOsrEntries();

  const Module &M;
  const FuncDecl &F;
  const MCode &Code;
  const VerifyScope &Scope;
  const BodyScan &Scan;
  VerifyReport &Rep;
  const uint32_t NL;
  const uint32_t N;
  std::vector<bool> Reach;
};

void MCodeVerifier::checkInst(uint32_t Pc, const MInst &I) {
  const uint32_t FS = Code.FrameSlots;
  auto target = [&](int64_t T, const char *What) {
    if (T < 0 || uint64_t(T) >= N)
      finding("branch-target", Pc,
              strFormat("%s target %lld outside code [0, %u)", What,
                        (long long)T, N));
  };
  switch (I.Op) {
  case MOp::LdSlot:
  case MOp::LdSlotF:
  case MOp::StSlot:
  case MOp::StSlotF:
  case MOp::StTag:
    if (I.Imm < 0 || uint64_t(I.Imm) >= FS)
      finding("slot-bounds", Pc,
              strFormat("%s slot %lld outside frame of %u slots",
                        mopName(I.Op), (long long)I.Imm, FS));
    break;
  case MOp::ZeroSlots:
    if (I.Imm < 0 || I.Imm2 < 0 || uint64_t(I.Imm) + uint64_t(I.Imm2) > FS)
      finding("slot-bounds", Pc,
              strFormat("ZeroSlots [%lld, %lld) outside frame of %u slots",
                        (long long)I.Imm, (long long)(I.Imm + I.Imm2), FS));
    break;
  case MOp::StSp:
    if (I.Imm < 0 || uint64_t(I.Imm) > FS)
      finding("slot-bounds", Pc,
              strFormat("StSp height %lld exceeds frame of %u slots",
                        (long long)I.Imm, FS));
    break;

  case MOp::Jmp:
  case MOp::JmpIf:
  case MOp::JmpIfZ:
  case MOp::BrCmp32:
  case MOp::BrCmpI32:
  case MOp::BrCmp64:
  case MOp::BrCmpI64:
    target(I.Imm, mopName(I.Op));
    break;
  case MOp::BrTable:
    if (I.Imm < 0 || uint64_t(I.Imm) >= Code.BrTables.size()) {
      finding("branch-target", Pc,
              strFormat("BrTable index %lld outside %zu tables",
                        (long long)I.Imm, Code.BrTables.size()));
    } else {
      const std::vector<uint32_t> &T = Code.BrTables[size_t(I.Imm)];
      if (T.empty())
        finding("branch-target", Pc, "BrTable with no entries");
      for (uint32_t E : T)
        target(int64_t(E), "BrTable entry");
    }
    break;

  case MOp::CallDirect:
  case MOp::CallIndirect: {
    uint32_t NArgs = 0, NRes = 0;
    if (I.Op == MOp::CallDirect) {
      if (I.Imm < 0 || uint64_t(I.Imm) >= M.Funcs.size()) {
        finding("call-index", Pc,
                strFormat("CallDirect callee %lld outside %zu functions",
                          (long long)I.Imm, M.Funcs.size()));
        break;
      }
      const FuncType &FT = M.funcType(uint32_t(I.Imm));
      NArgs = uint32_t(FT.Params.size());
      NRes = uint32_t(FT.Results.size());
    } else {
      if (I.Imm < 0 || uint64_t(I.Imm) >= M.Types.size()) {
        finding("call-index", Pc,
                strFormat("CallIndirect type %lld outside %zu types",
                          (long long)I.Imm, M.Types.size()));
        break;
      }
      const FuncType &FT = M.Types[size_t(I.Imm)];
      NArgs = uint32_t(FT.Params.size());
      NRes = uint32_t(FT.Results.size());
    }
    uint32_t Span = std::max(NArgs, NRes);
    if (I.Imm2 < 0 || uint64_t(I.Imm2) + Span > FS)
      finding("slot-bounds", Pc,
              strFormat("%s arg base %lld + %u slots outside frame of %u",
                        mopName(I.Op), (long long)I.Imm2, Span, FS));
    break;
  }

  case MOp::GlobGet:
  case MOp::GlobGetF:
  case MOp::GlobSet:
  case MOp::GlobSetF:
    if (I.Imm < 0 || uint64_t(I.Imm) >= M.Globals.size())
      finding("global-index", Pc,
              strFormat("%s global %lld outside %zu globals", mopName(I.Op),
                        (long long)I.Imm, M.Globals.size()));
    break;

  case MOp::ProbeFire:
  case MOp::ProbeTosG:
  case MOp::ProbeTosF:
    if (I.Imm < 0 || !boundary(uint32_t(I.Imm)))
      finding("probe-site", Pc,
              strFormat("%s at non-boundary bytecode offset %lld",
                        mopName(I.Op), (long long)I.Imm));
    break;

  case MOp::CntInc:
    // Verification always sees the relocatable form: the engine binds the
    // patch table only after this pass. A nonzero Imm is an absolute
    // address baked into the artifact — exactly what a deserialized (or
    // adversarial) artifact must never be able to smuggle past admission,
    // since the executor increments through it blindly.
    if (I.Imm != 0)
      finding("patch-point", Pc,
              strFormat("CntInc carries baked address %lld; relocatable "
                        "artifacts must leave it unbound",
                        (long long)I.Imm));
    break;

  case MOp::FuelCheck:
    // The trap site is the Imm itself (not the line table); it must name a
    // real opcode boundary or a fuel trap would report a pc no other tier
    // can reach.
    if (I.Imm < 0 || !boundary(uint32_t(I.Imm)))
      finding("fuel-site", Pc,
              strFormat("FuelCheck at non-boundary bytecode offset %lld",
                        (long long)I.Imm));
    break;

  case MOp::DeoptCheck: {
    const OpSite *S = I.Imm >= 0 ? Scan.at(uint32_t(I.Imm)) : nullptr;
    if (!S)
      finding("deopt-site", Pc,
              strFormat("DeoptCheck resume ip %lld is not an opcode boundary",
                        (long long)I.Imm));
    else if (I.Imm2 < 0 || uint64_t(I.Imm2) != S->Stp)
      finding("deopt-site", Pc,
              strFormat("DeoptCheck at ip %lld carries stp %lld, validator "
                        "says %u",
                        (long long)I.Imm, (long long)I.Imm2, S->Stp));
    break;
  }

  default:
    break; // ALU/move/memory forms have no statically-checkable fields
           // beyond trap coverage.
  }
}

void MCodeVerifier::computeReachability() {
  Reach.assign(N, false);
  std::vector<uint32_t> Work;
  auto seed = [&](uint32_t Pc) {
    if (Pc < N && !Reach[Pc]) {
      Reach[Pc] = true;
      Work.push_back(Pc);
    }
  };
  if (N)
    seed(0);
  for (const MCode::OsrEntry &E : Code.OsrEntries)
    seed(E.Pc);
  bool FellOff = false;
  while (!Work.empty()) {
    uint32_t Pc = Work.back();
    Work.pop_back();
    const MInst &I = Code.Insts[Pc];
    auto fallthrough = [&]() {
      if (Pc + 1 < N)
        seed(Pc + 1);
      else if (!FellOff) {
        FellOff = true;
        finding("fall-off-end", Pc,
                strFormat("%s at last pc %u falls through past the end",
                          mopName(I.Op), Pc));
      }
    };
    switch (I.Op) {
    case MOp::Jmp:
      if (I.Imm >= 0 && uint64_t(I.Imm) < N)
        seed(uint32_t(I.Imm));
      break;
    case MOp::JmpIf:
    case MOp::JmpIfZ:
    case MOp::BrCmp32:
    case MOp::BrCmpI32:
    case MOp::BrCmp64:
    case MOp::BrCmpI64:
      if (I.Imm >= 0 && uint64_t(I.Imm) < N)
        seed(uint32_t(I.Imm));
      fallthrough();
      break;
    case MOp::BrTable:
      if (I.Imm >= 0 && uint64_t(I.Imm) < Code.BrTables.size())
        for (uint32_t T : Code.BrTables[size_t(I.Imm)])
          if (T < N)
            seed(T);
      break;
    case MOp::Ret:
    case MOp::TrapOp:
      break;
    default:
      fallthrough();
      break;
    }
  }
}

void MCodeVerifier::checkLineTable() {
  uint32_t PrevPc = 0;
  bool First = true;
  for (const LineEntry &E : Code.LineTable) {
    if (!First && E.Pc <= PrevPc)
      finding("line-table", E.Pc,
              strFormat("line table not strictly ascending: pc %u after %u",
                        E.Pc, PrevPc));
    First = false;
    PrevPc = E.Pc;
    // pc == N (one past the last instruction) can never cover anything:
    // noteLine's pop-and-replace keeps only entries that real code follows.
    if (E.Pc >= N)
      finding("line-table", E.Pc,
              strFormat("line entry pc %u beyond code end %u", E.Pc, N));
    if (!boundary(E.Ip))
      finding("line-table", E.Pc,
              strFormat("line entry maps pc %u to non-boundary bytecode "
                        "offset %u",
                        E.Pc, E.Ip));
  }
}

void MCodeVerifier::checkPatchPoints() {
  // The patch table is the only road from a relocatable artifact to an
  // engine-absolute operand, so it gets the same structural scrutiny as
  // the code: every entry must target an in-range instruction of the kind
  // it claims to patch, at a real opcode boundary, and every CntInc must
  // be reachable *through* the table (an uncovered CntInc would execute
  // with its unbound zero operand). checkInst separately rejects CntInc
  // instructions that already carry a baked address.
  std::vector<bool> Covered(N, false);
  for (const PatchPoint &P : Code.Patches) {
    if (P.Pc >= N) {
      finding("patch-point", P.Pc,
              strFormat("patch point beyond code end %u", N));
      continue;
    }
    switch (P.Kind) {
    case PatchKind::CounterCell:
      if (Code.Insts[P.Pc].Op != MOp::CntInc)
        finding("patch-point", P.Pc,
                strFormat("CounterCell patch targets %s, not CntInc",
                          mopName(Code.Insts[P.Pc].Op)));
      else if (Covered[P.Pc])
        finding("patch-point", P.Pc, "duplicate patch point");
      else
        Covered[P.Pc] = true;
      if (P.Operand > ~uint32_t(0) || !boundary(uint32_t(P.Operand)))
        finding("patch-point", P.Pc,
                strFormat("CounterCell patch at non-boundary bytecode "
                          "offset %llu",
                          (unsigned long long)P.Operand));
      break;
    }
  }
  for (uint32_t Pc = 0; Pc < N; ++Pc)
    if (Code.Insts[Pc].Op == MOp::CntInc && !Covered[Pc])
      finding("patch-point", Pc,
              "CntInc not covered by any CounterCell patch point");
}

void MCodeVerifier::checkTrapCoverage() {
  for (uint32_t Pc = 0; Pc < N; ++Pc) {
    if (!Reach[Pc] || !mopCanTrap(Code.Insts[Pc].Op))
      continue;
    MOp MO = Code.Insts[Pc].Op;
    if (Code.LineTable.empty() || Pc < Code.LineTable.front().Pc) {
      finding("trap-coverage", Pc,
              strFormat("trapping %s not covered by any line-table entry",
                        mopName(MO)));
      continue;
    }
    uint32_t Ip = Code.ipForPc(Pc, ~0u);
    const OpSite *S = Scan.at(Ip);
    if (!S)
      continue; // Already reported by checkLineTable.
    if (!trapCoverCompatible(MO, S->Op))
      finding("trap-coverage", Pc,
              strFormat("trapping %s attributed to %s at offset %u, which "
                        "cannot trap",
                        mopName(MO), opName(S->Op), Ip));
  }
}

void MCodeVerifier::checkCallAndProbeShape() {
  for (uint32_t Pc = 0; Pc < N; ++Pc) {
    const MInst &I = Code.Insts[Pc];
    if (!Reach[Pc])
      continue;
    if (I.Op == MOp::CallDirect || I.Op == MOp::CallIndirect) {
      // The published Sp must agree with the argument base regardless of
      // pipeline (the stack walker and the callee both consume it).
      if (Pc > 0 && Code.Insts[Pc - 1].Op == MOp::StSp &&
          Code.Insts[Pc - 1].Imm != I.Imm2)
        finding("call-shape", Pc,
                strFormat("%s arg base %lld disagrees with published Sp "
                          "%lld",
                          mopName(I.Op), (long long)I.Imm2,
                          (long long)Code.Insts[Pc - 1].Imm));
      // Facts-tightened argument-window bounds, valid on every tier (the
      // optimizing one included): the argument base can never dip into the
      // locals area, and base + argument count must stay inside the frame
      // reservation the prologue made.
      if (Scope.HaveFacts &&
          (I.Op == MOp::CallDirect ? uint64_t(I.Imm) < M.Funcs.size()
                                   : uint64_t(I.Imm) < M.Types.size())) {
        const FuncType &AFT = I.Op == MOp::CallDirect
                                  ? M.funcType(uint32_t(I.Imm))
                                  : M.Types[size_t(I.Imm)];
        if (I.Imm2 < int64_t(NL))
          finding("call-shape", Pc,
                  strFormat("%s arg base %lld dips into the %u-slot locals "
                            "area",
                            mopName(I.Op), (long long)I.Imm2, NL));
        else if (I.Imm2 + int64_t(AFT.Params.size()) >
                 int64_t(Code.FrameSlots))
          finding("call-shape", Pc,
                  strFormat("%s arg base %lld + %zu args exceeds the %u-slot "
                            "frame reservation",
                            mopName(I.Op), (long long)I.Imm2,
                            AFT.Params.size(), Code.FrameSlots));
      }
      if (!Scope.CheckCallShape)
        continue;
      if (Pc == 0 || Code.Insts[Pc - 1].Op != MOp::StSp) {
        finding("call-shape", Pc,
                strFormat("%s without a preceding Sp publish", mopName(I.Op)));
        continue;
      }
      uint32_t Ip = Code.ipForPc(Pc, ~0u);
      const OpSite *S = Scan.at(Ip);
      if (!S)
        continue;
      Opcode Want =
          I.Op == MOp::CallDirect ? Opcode::Call : Opcode::CallIndirect;
      if (S->Op != Want) {
        finding("call-shape", Pc,
                strFormat("%s attributed to %s at offset %u", mopName(I.Op),
                          opName(S->Op), Ip));
        continue;
      }
      if (S->ImmA != uint64_t(I.Imm))
        finding("call-shape", Pc,
                strFormat("%s callee %lld disagrees with bytecode immediate "
                          "%u at offset %u",
                          mopName(I.Op), (long long)I.Imm, S->ImmA, Ip));
      // Out-of-range callee/type index (negative included via the unsigned
      // cast): checkInst already recorded the call-index finding, and there
      // is no signature to relate the arg base to — skip, don't deref.
      if (I.Op == MOp::CallDirect ? uint64_t(I.Imm) >= M.Funcs.size()
                                  : uint64_t(I.Imm) >= M.Types.size())
        continue;
      const FuncType &FT = I.Op == MOp::CallDirect
                               ? M.funcType(uint32_t(I.Imm))
                               : M.Types[size_t(I.Imm)];
      // call_indirect pops its i32 table index before the base is taken.
      uint32_t H = S->Height - (I.Op == MOp::CallIndirect ? 1 : 0);
      int64_t Want2 = int64_t(NL) + int64_t(H) - int64_t(FT.Params.size());
      if (I.Imm2 != Want2)
        finding("call-shape", Pc,
                strFormat("%s arg base %lld, validator stack shape demands "
                          "%lld (locals %u + height %u - %zu args)",
                          mopName(I.Op), (long long)I.Imm2, (long long)Want2,
                          NL, H, FT.Params.size()));
    } else if (I.Op == MOp::ProbeFire && Scope.CheckCallShape) {
      // Generic probes observe a fully-published frame: Sp set to the
      // validator's operand height at the probed opcode.
      const OpSite *S = I.Imm >= 0 ? Scan.at(uint32_t(I.Imm)) : nullptr;
      if (!S)
        continue; // Reported by checkInst.
      if (Pc == 0 || Code.Insts[Pc - 1].Op != MOp::StSp) {
        finding("probe-shape", Pc, "ProbeFire without a preceding Sp publish");
        continue;
      }
      int64_t Want = int64_t(NL) + int64_t(S->Height);
      if (Code.Insts[Pc - 1].Imm != Want)
        finding("probe-shape", Pc,
                strFormat("ProbeFire at offset %lld publishes Sp %lld, "
                          "validator height demands %lld",
                          (long long)I.Imm, (long long)Code.Insts[Pc - 1].Imm,
                          (long long)Want));
    }
  }
}

void MCodeVerifier::checkOsrEntries() {
  for (const MCode::OsrEntry &E : Code.OsrEntries) {
    const OpSite *S = Scan.at(E.Ip);
    if (!S) {
      finding("osr-entry", E.Pc,
              strFormat("OSR entry ip %u is not an opcode boundary", E.Ip));
      continue;
    }
    if (E.Pc >= N)
      finding("osr-entry", E.Pc,
              strFormat("OSR entry pc %u outside code [0, %u)", E.Pc, N));
    if (E.Stp != S->Stp)
      finding("osr-entry", E.Pc,
              strFormat("OSR entry at ip %u carries stp %u, validator says "
                        "%u",
                        E.Ip, E.Stp, S->Stp));
  }
}

void MCodeVerifier::checkFrameAndInsts() {
  if (Code.FrameSlots < NL)
    finding("frame-size", 0,
            strFormat("frame reserves %u slots but the function has %u "
                      "local slots",
                      Code.FrameSlots, NL));
  // With analyzer facts the floor tightens from "covers the locals" to
  // "covers locals + the reachable operand-stack bound" — and, unlike the
  // structural check, this applies to the optimizing tier too (its frame
  // is locals + spills + max reachable height + scratch, always >= this).
  else if (Scope.HaveFacts && Code.FrameSlots < NL + Scope.OperandStackBound)
    finding("frame-size", 0,
            strFormat("frame reserves %u slots but the analyzer's reachable "
                      "operand-stack bound demands %u (locals %u + stack "
                      "bound %u)",
                      Code.FrameSlots, NL + Scope.OperandStackBound, NL,
                      Scope.OperandStackBound));
  if (N == 0) {
    finding("empty-code", 0, "compiled body contains no instructions");
    return;
  }
  for (uint32_t Pc = 0; Pc < N; ++Pc)
    checkInst(Pc, Code.Insts[Pc]);
}

void MCodeVerifier::run() {
  checkFrameAndInsts();
  if (N == 0)
    return;
  computeReachability();
  checkLineTable();
  checkPatchPoints();
  if (Scope.TrapPcKnown)
    checkTrapCoverage();
  checkCallAndProbeShape();
  checkOsrEntries();
}

// --- Threaded-IR checks --------------------------------------------------

bool topIsBranch(TOp T) {
  switch (T) {
  case TOp::Br:
  case TOp::BrIf:
  case TOp::IfFalse:
    return true;
#define WISP_FUSE_CMPOP(Name, Cond)                                            \
  case TOp::Name##ThenBr:                                                      \
  case TOp::GetGet##Name##ThenBr:                                              \
    return true;
#include "interp/handlers.inc"
  default:
    return false;
  }
}

/// Fused units carrying two local indices in A/Aux.
bool topIsGetGet(TOp T) {
  switch (T) {
#define WISP_FUSE_BINOP(Name, Expr, Ty) case TOp::GetGet##Name:
#include "interp/handlers.inc"
    return true;
  default:
    return false;
  }
}

/// Fused units carrying one local index in A and a constant in B.
bool topIsGetConst(TOp T) {
  switch (T) {
#define WISP_FUSE_BINOP(Name, Expr, Ty) case TOp::GetConst##Name:
#include "interp/handlers.inc"
    return true;
  default:
    return false;
  }
}

/// Fused branch units packing two local indices into X (lo16/hi16).
bool topIsGetGetThenBr(TOp T) {
  switch (T) {
#define WISP_OP(Name, ...)
#define WISP_FUSE_CMPOP(Name, Cond) case TOp::GetGet##Name##ThenBr:
#include "interp/handlers.inc"
    return true;
  default:
    return false;
  }
}

class ThreadedVerifier {
public:
  ThreadedVerifier(const Module &M, const FuncDecl &F, const ThreadedCode &TC,
                   const std::function<bool(uint32_t)> &IsProbed,
                   const BodyScan &Scan, VerifyReport &Rep)
      : M(M), F(F), TC(TC), IsProbed(IsProbed), Scan(Scan), Rep(Rep),
        NL(F.numLocalSlots()) {}

  void run();

private:
  void finding(const char *Check, uint32_t Unit, std::string Detail) {
    if (Rep.Findings.size() < MaxFindings)
      Rep.Findings.push_back({Check, Unit, std::move(Detail)});
  }
  /// The fused span covering \p BcIp, or nullptr.
  const std::pair<uint32_t, uint32_t> *spanAt(uint32_t BcIp) const {
    for (const auto &Sp : TC.FusedSpans)
      if (BcIp >= Sp.first && BcIp < Sp.second)
        return &Sp;
    return nullptr;
  }
  void checkUnits();
  void checkBranchUnit(uint32_t Idx, const IrUnit &U);
  void checkBrTableUnit(uint32_t Idx, const IrUnit &U);
  void checkResolvedTarget(uint32_t Idx, const SideTableEntry &E,
                           uint32_t TargetUnit, uint32_t DstBase,
                           uint32_t ValCount, uint64_t IpFlag,
                           uint32_t BrOpIp);
  void checkIndices(uint32_t Idx, const IrUnit &U);
  void checkFusedSpans();
  void checkProbeUnits();

  const Module &M;
  const FuncDecl &F;
  const ThreadedCode &TC;
  const std::function<bool(uint32_t)> &IsProbed;
  const BodyScan &Scan;
  VerifyReport &Rep;
  const uint32_t NL;
};

void ThreadedVerifier::checkResolvedTarget(uint32_t Idx,
                                           const SideTableEntry &E,
                                           uint32_t TargetUnit,
                                           uint32_t DstBase, uint32_t ValCount,
                                           uint64_t IpFlag, uint32_t BrOpIp) {
  uint32_t Want = TC.unitIndexAt(E.TargetIp);
  if (Want == ThreadedCode::NoUnit) {
    finding("threaded-branch", Idx,
            strFormat("branch target ip %u resolves to no unit (inside a "
                      "fused span or past the end)",
                      E.TargetIp));
    return;
  }
  // Backward branches deliberately resolve PAST an exact-match loop-header
  // fuel gate: the branch handler itself charges taken backedges, so
  // landing on the gate would double-charge the arrival.
  if (Want < TC.Units.size() && TOp(TC.Units[Want].Op) == TOp::FuelGate &&
      TC.Units[Want].BcIp == E.TargetIp && E.TargetIp <= BrOpIp)
    ++Want;
  if (TargetUnit != Want)
    finding("threaded-branch", Idx,
            strFormat("branch resolves to unit %u, side table demands unit "
                      "%u (target ip %u)",
                      TargetUnit, Want, E.TargetIp));
  if (DstBase != NL + E.TargetHeight)
    finding("threaded-slot-base", Idx,
            strFormat("destination slot base %u, recomputed stack depth "
                      "demands %u (locals %u + target height %u)",
                      DstBase, NL + E.TargetHeight, NL, E.TargetHeight));
  if (ValCount != E.ValCount)
    finding("threaded-branch", Idx,
            strFormat("merge value count %u, side table says %u", ValCount,
                      E.ValCount));
  uint64_t WantFlag = E.TargetIp;
  if (E.TargetIp <= BrOpIp)
    WantFlag |= uint64_t(1) << 32;
  if (IpFlag != WantFlag)
    finding("threaded-branch", Idx,
            strFormat("target ip/backward word 0x%llx, recomputed 0x%llx",
                      (unsigned long long)IpFlag,
                      (unsigned long long)WantFlag));
}

void ThreadedVerifier::checkBranchUnit(uint32_t Idx, const IrUnit &U) {
  if (U.Stp >= F.Table.Entries.size()) {
    finding("threaded-branch", Idx,
            strFormat("branch unit stp %u outside side table of %zu entries",
                      U.Stp, F.Table.Entries.size()));
    return;
  }
  // The branching opcode is the last constituent: the unit's own opcode
  // unless fusion folded a comparison (and local.gets) in front of the
  // br_if, in which case it is the last boundary inside the fused span.
  // None of the non-branch constituents emit side-table entries, so the
  // unit's recorded Stp is also the branch entry index.
  uint32_t BrOpIp = U.BcIp;
  if (const auto *Sp = spanAt(U.BcIp)) {
    auto It = Scan.Sites.lower_bound(Sp->second);
    if (It != Scan.Sites.begin()) {
      --It;
      BrOpIp = It->first;
    }
  }
  const SideTableEntry &E = F.Table.Entries[U.Stp];
  checkResolvedTarget(Idx, E, U.A, U.Aux, U.ValCount, U.B, BrOpIp);
}

void ThreadedVerifier::checkBrTableUnit(uint32_t Idx, const IrUnit &U) {
  uint64_t End = uint64_t(U.A) + U.X + 1;
  if (End > TC.Cases.size()) {
    finding("threaded-branch", Idx,
            strFormat("br_table cases [%u, %llu) outside %zu stored cases",
                      U.A, (unsigned long long)End, TC.Cases.size()));
    return;
  }
  if (uint64_t(U.Stp) + U.X + 1 > F.Table.Entries.size()) {
    finding("threaded-branch", Idx,
            strFormat("br_table stp %u + %u cases outside side table of %zu "
                      "entries",
                      U.Stp, U.X + 1, F.Table.Entries.size()));
    return;
  }
  for (uint32_t K = 0; K <= U.X; ++K) {
    const BrCase &C = TC.Cases[U.A + K];
    const SideTableEntry &E = F.Table.Entries[U.Stp + K];
    checkResolvedTarget(Idx, E, C.TargetUnit, C.DstBase, C.ValCount, C.IpFlag,
                        U.BcIp);
  }
}

void ThreadedVerifier::checkIndices(uint32_t Idx, const IrUnit &U) {
  const uint32_t NLoc = uint32_t(F.LocalTypes.size());
  auto local = [&](uint32_t L, const char *What) {
    if (L >= NLoc)
      finding("threaded-index", Idx,
              strFormat("%s local %u outside %u locals", What, L, NLoc));
  };
  TOp T = TOp(U.Op);
  switch (T) {
  case TOp::LocalGet:
  case TOp::LocalSet:
  case TOp::LocalTee:
    local(U.A, "local access");
    break;
  case TOp::SetGet:
    local(U.A, "set side");
    local(U.Aux, "get side");
    break;
  case TOp::GlobalGet:
  case TOp::GlobalSet:
    if (U.A >= M.Globals.size())
      finding("threaded-index", Idx,
              strFormat("global %u outside %zu globals", U.A,
                        M.Globals.size()));
    break;
  case TOp::Call:
    if (U.A >= M.Funcs.size())
      finding("threaded-index", Idx,
              strFormat("call target %u outside %zu functions", U.A,
                        M.Funcs.size()));
    break;
  case TOp::CallIndirect:
    if (U.A >= M.Types.size())
      finding("threaded-index", Idx,
              strFormat("call_indirect type %u outside %zu types", U.A,
                        M.Types.size()));
    if (U.Aux >= M.Tables.size())
      finding("threaded-index", Idx,
              strFormat("call_indirect table %u outside %zu tables", U.Aux,
                        M.Tables.size()));
    break;
  default:
    if (topIsGetGet(T)) {
      local(U.A, "fused left operand");
      local(U.Aux, "fused right operand");
    } else if (topIsGetConst(T)) {
      local(U.A, "fused left operand");
    } else if (topIsGetGetThenBr(T)) {
      local(U.X & 0xffff, "fused left operand");
      local(U.X >> 16, "fused right operand");
    }
    break;
  }
}

void ThreadedVerifier::checkUnits() {
  if (TC.Units.empty()) {
    finding("threaded-units", 0, "threaded body contains no units");
    return;
  }
  uint32_t PrevIp = 0;
  for (uint32_t Idx = 0; Idx < TC.Units.size(); ++Idx) {
    const IrUnit &U = TC.Units[Idx];
    if (U.Op >= uint16_t(TOp::Count)) {
      finding("threaded-units", Idx,
              strFormat("unknown handler token %u", U.Op));
      continue;
    }
    // A loop-header fuel gate shares its BcIp with the real header unit
    // that follows; that is the one sanctioned duplicate.
    if (Idx && (U.BcIp < PrevIp ||
                (U.BcIp == PrevIp &&
                 TOp(TC.Units[Idx - 1].Op) != TOp::FuelGate)))
      finding("threaded-units", Idx,
              strFormat("units not strictly ascending: ip %u after %u",
                        U.BcIp, PrevIp));
    PrevIp = U.BcIp;
    const OpSite *S = Scan.at(U.BcIp);
    if (!S) {
      finding("threaded-units", Idx,
              strFormat("unit ip %u is not an opcode boundary", U.BcIp));
      continue;
    }
    if (U.Stp != S->Stp)
      finding("threaded-units", Idx,
              strFormat("unit at ip %u carries stp %u, validator says %u",
                        U.BcIp, U.Stp, S->Stp));
    TOp T = TOp(U.Op);
    if (T == TOp::BrTable)
      checkBrTableUnit(Idx, U);
    else if (topIsBranch(T))
      checkBranchUnit(Idx, U);
    checkIndices(Idx, U);
  }
  const IrUnit &Last = TC.Units.back();
  if (TOp(Last.Op) != TOp::Return || Last.BcIp != Scan.TermEndIp)
    finding("threaded-units", uint32_t(TC.Units.size() - 1),
            strFormat("last unit (ip %u) is not the function-terminating "
                      "end at %u",
                      Last.BcIp, Scan.TermEndIp));
}

void ThreadedVerifier::checkFusedSpans() {
  if (TC.NumFused != TC.FusedSpans.size())
    finding("threaded-fusion", 0,
            strFormat("%u fused units but %zu recorded spans", TC.NumFused,
                      TC.FusedSpans.size()));
  uint32_t PrevEnd = 0;
  for (const auto &Sp : TC.FusedSpans) {
    if (Sp.first < PrevEnd || Sp.first >= Sp.second ||
        Sp.first < F.BodyStart || Sp.second > F.BodyEnd) {
      finding("threaded-fusion", 0,
              strFormat("malformed fused span [%u, %u)", Sp.first,
                        Sp.second));
      continue;
    }
    PrevEnd = Sp.second;
    // The span must start at a real unit...
    uint32_t Idx = TC.unitIndexAt(Sp.first);
    if (Idx == ThreadedCode::NoUnit || TC.Units[Idx].BcIp != Sp.first)
      finding("threaded-fusion", 0,
              strFormat("fused span [%u, %u) does not start at a unit",
                        Sp.first, Sp.second));
    // ...and no interior opcode may be a branch target or probed: a frame
    // resuming there (branch, probe fire, deopt) would land mid-fusion.
    for (const SideTableEntry &E : F.Table.Entries)
      if (E.TargetIp > Sp.first && E.TargetIp < Sp.second)
        finding("threaded-fusion", Idx,
                strFormat("branch target ip %u lands inside fused span "
                          "[%u, %u)",
                          E.TargetIp, Sp.first, Sp.second));
    if (IsProbed) {
      auto It = Scan.Sites.upper_bound(Sp.first);
      for (; It != Scan.Sites.end() && It->first < Sp.second; ++It)
        if (IsProbed(It->first))
          finding("threaded-fusion", Idx,
                  strFormat("probed offset %u lies inside fused span "
                            "[%u, %u)",
                            It->first, Sp.first, Sp.second));
    }
  }
}

void ThreadedVerifier::checkProbeUnits() {
  if (!IsProbed)
    return;
  for (const auto &KV : Scan.Sites) {
    if (!IsProbed(KV.first))
      continue;
    uint32_t Idx = TC.unitIndexAt(KV.first);
    if (Idx == ThreadedCode::NoUnit || TC.Units[Idx].BcIp != KV.first)
      finding("threaded-probe", Idx == ThreadedCode::NoUnit ? 0 : Idx,
              strFormat("probed offset %u has no exact unit", KV.first));
  }
}

void ThreadedVerifier::run() {
  checkUnits();
  checkFusedSpans();
  checkProbeUnits();
}

} // namespace

// --- Public API ----------------------------------------------------------

std::string VerifyFinding::text() const {
  return strFormat("[%s] pc %u: %s", Check.c_str(), Pc, Detail.c_str());
}

std::string VerifyReport::text() const {
  std::string S;
  for (const VerifyFinding &Fi : Findings) {
    if (!S.empty())
      S += "\n";
    S += strFormat("func %u ", FuncIndex) + Fi.text();
  }
  return S;
}

VerifyReport wisp::verifyMachineCode(const Module &M, const FuncDecl &F,
                                     const MCode &Code,
                                     const VerifyScope &Scope) {
  VerifyReport Rep;
  Rep.FuncIndex = F.Index;
  BodyScan Scan = BodyScanner(M, F).run();
  if (!Scan.Ok) {
    Rep.Findings.push_back(
        {"body-scan", 0, "cannot rederive validator coordinates: " +
                             Scan.Error});
    return Rep;
  }
  MCodeVerifier(M, F, Code, Scope, Scan, Rep).run();
  return Rep;
}

VerifyReport
wisp::verifyThreadedCode(const Module &M, const FuncDecl &F,
                         const ThreadedCode &TC,
                         const std::function<bool(uint32_t)> &IsProbed) {
  VerifyReport Rep;
  Rep.FuncIndex = F.Index;
  BodyScan Scan = BodyScanner(M, F).run();
  if (!Scan.Ok) {
    Rep.Findings.push_back(
        {"body-scan", 0, "cannot rederive validator coordinates: " +
                             Scan.Error});
    return Rep;
  }
  ThreadedVerifier(M, F, TC, IsProbed, Scan, Rep).run();
  return Rep;
}
