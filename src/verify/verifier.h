//===- verify/verifier.h - static artifact verification ---------*- C++ -*-===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static translation validation of compiled artifacts: without executing
/// anything, checks machine code (all four compiler pipelines) and
/// pre-decoded threaded IR against invariants derived from the validated
/// Wasm body. The checks are a structural mirror of the contracts the
/// executor, the tier dispatcher and the differential fuzzer rely on:
///
///   MCode (verifyMachineCode):
///    - every branch/jump target (including br_table entries) lands on an
///      instruction boundary inside the emitted code, and no reachable
///      straight-line path falls off the end,
///    - every slot the body touches is bounded by the prologue's frame
///      reservation (loads, stores, tag stores, zero-fills, Sp publishes),
///    - every function/type/global index embedded in the code resolves,
///    - the line table is strictly ascending and maps only to real opcode
///      boundaries of the source body,
///    - every potentially-trapping machine instruction is covered by a
///      line-table entry whose bytecode opcode can actually trap (the
///      trap-site-PC agreement the differ checks dynamically),
///    - call sites publish Sp and pass an argument base that matches the
///      wasm validator's operand-stack height at the call opcode,
///    - probe, deopt-checkpoint and OSR-entry metadata agree with the
///      validator's Ip/Stp coordinates (the join-point consistency the
///      tier-transfer machinery depends on).
///
///   ThreadedCode (verifyThreadedCode):
///    - units are strictly ascending and carry real opcode boundaries with
///      the validator's side-table position,
///    - every pre-resolved branch target is a unit boundary whose
///      destination slot base, merge arity, target ip and backward flag
///      match the recomputed side-table entry,
///    - superinstruction fusion never spans a probed PC or a branch-target
///      interior, and every probed offset keeps an exact unit,
///    - all embedded local/global/function/type/table indices resolve.
///
/// The pass re-derives the validator's per-opcode operand-stack heights and
/// side-table positions by a heights-only abstract interpretation of the
/// body (BodyScan below, internal to the implementation), so it needs no
/// cooperation from the compilers being checked.
///
//===----------------------------------------------------------------------===//

#ifndef WISP_VERIFY_VERIFIER_H
#define WISP_VERIFY_VERIFIER_H

#include "interp/predecode.h"
#include "machine/isa.h"
#include "wasm/module.h"

#include <functional>
#include <string>
#include <vector>

namespace wisp {

/// One verifier finding: an invariant violation in a compiled artifact.
struct VerifyFinding {
  std::string Check;  ///< Invariant identifier, e.g. "branch-target".
  uint32_t Pc = 0;    ///< Machine pc (MCode) or unit index (ThreadedCode).
  std::string Detail; ///< Human-readable description.

  std::string text() const;
};

/// Result of verifying one artifact.
struct VerifyReport {
  uint32_t FuncIndex = 0;
  std::vector<VerifyFinding> Findings;

  bool ok() const { return Findings.empty(); }
  /// All findings, one per line, prefixed with the function index.
  std::string text() const;
};

/// Which invariant families apply to an artifact. The single-pass-shaped
/// pipelines (SPC, two-pass, copy-and-patch) make the full contract; the
/// optimizing tier reorders and folds across opcodes, keeps no line table
/// and reserves staging slots beyond the validator's frame shape, so only
/// the structural checks apply there.
struct VerifyScope {
  /// The artifact promises trap-site bytecode attribution: every trapping
  /// instruction must be covered by the line table.
  bool TrapPcKnown = true;
  /// Calls/probes follow the baseline frame discipline: operands spilled
  /// to their canonical slots, arg base = locals + validator height - args.
  bool CheckCallShape = true;
  /// Static-analysis facts are present: OperandStackBound below is the
  /// analyzer's reachable-only operand-stack bound for this function, and
  /// the tightened checks apply on EVERY tier (the optimizing one
  /// included): the frame must reserve at least locals + bound slots, and
  /// every call's argument window must sit above the locals area and
  /// inside the frame reservation. Sound on the optimizing tier because
  /// its frame is locals + spills + max reachable height + scratch, and
  /// the reachable-only bound never counts dead-code pushes the optimizer
  /// may elide.
  bool HaveFacts = false;
  uint32_t OperandStackBound = 0;

  static VerifyScope baseline() { return VerifyScope{}; }
  static VerifyScope optimizing() { return VerifyScope{false, false}; }
  /// Attaches analyzer facts to either base scope.
  VerifyScope withFacts(uint32_t StackBound) const {
    VerifyScope S = *this;
    S.HaveFacts = true;
    S.OperandStackBound = StackBound;
    return S;
  }
};

/// Statically verifies one compiled function body against the validated
/// module. \p F must be the declaration \p Code was compiled from.
VerifyReport verifyMachineCode(const Module &M, const FuncDecl &F,
                               const MCode &Code, const VerifyScope &Scope);

/// Statically verifies one pre-decoded threaded-IR body. \p IsProbed
/// (optional) reports whether a bytecode offset has a probe attached, with
/// the same answers the pre-decoder saw; when supplied, fusion spans are
/// additionally checked against probe placement and every probed offset
/// must keep an exact unit.
VerifyReport
verifyThreadedCode(const Module &M, const FuncDecl &F, const ThreadedCode &TC,
                   const std::function<bool(uint32_t)> &IsProbed = {});

} // namespace wisp

#endif // WISP_VERIFY_VERIFIER_H
