//===- examples/quickstart.cpp - five-minute tour of the public API --------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Builds a small Wasm module (programmatically — normally you would read a
// .wasm file from disk), loads it into an engine, and invokes an export on
// two execution tiers: the in-place interpreter and the single-pass JIT.
//
//===----------------------------------------------------------------------===//

#include "engine/engine.h"
#include "engine/registry.h"
#include "wasm/builder.h"

#include <cstdio>

using namespace wisp;

int main() {
  // 1. Produce a module: gcd(a, b) by Euclid's algorithm.
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32, ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.block();
  F.loop();
  F.localGet(1);
  F.op(Opcode::I32Eqz);
  F.brIf(1); // b == 0: done.
  F.localGet(1);
  F.localGet(0);
  F.localGet(1);
  F.op(Opcode::I32RemU);
  F.localSet(1); // b = a % b
  F.localSet(0); // a = old b
  F.br(0);
  F.end();
  F.end();
  F.localGet(0);
  MB.exportFunc("gcd", MB.funcIndex(F));
  std::vector<uint8_t> Wasm = MB.build();
  printf("module: %zu bytes\n", Wasm.size());

  // 2. Run it on two tiers.
  for (const char *Tier : {"wizard-int", "wizard-spc"}) {
    Engine E(configByName(Tier));
    WasmError Err;
    std::unique_ptr<LoadedModule> LM = E.load(Wasm, &Err);
    if (!LM) {
      fprintf(stderr, "load failed: %s\n", Err.Message.c_str());
      return 1;
    }
    std::vector<Value> Out;
    TrapReason Trap = E.invoke(
        *LM, "gcd", {Value::makeI32(3528), Value::makeI32(3780)}, &Out);
    if (Trap != TrapReason::None) {
      fprintf(stderr, "trap: %s\n", trapReasonName(Trap));
      return 1;
    }
    printf("%-10s gcd(3528, 3780) = %d   (setup %.1f us, code insts %llu)\n",
           Tier, Out[0].asI32(), double(LM->Stats.TotalSetupNs) / 1e3,
           (unsigned long long)LM->Stats.CodeInsts);
  }
  return 0;
}
