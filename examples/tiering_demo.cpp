//===- examples/tiering_demo.cpp - tier-up (OSR) and tier-down -------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Shows the frame-compatible tiering design of paper §IV.B: a tiered
// engine starts a hot loop in the interpreter, tiers up mid-loop via OSR
// by rewriting the frame in place, and tiers down again when a probe is
// attached to the running function.
//
//===----------------------------------------------------------------------===//

#include "engine/engine.h"
#include "engine/registry.h"
#include "instr/monitors.h"
#include "wasm/builder.h"

#include <cstdio>

using namespace wisp;

int main() {
  // A module with one hot function: iterative popcount-sum over a range.
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  uint32_t Acc = F.addLocal(ValType::I32);
  F.block();
  F.localGet(0);
  F.op(Opcode::I32Eqz);
  F.brIf(0);
  F.loop();
  F.localGet(Acc);
  F.localGet(0);
  F.op(Opcode::I32Popcnt);
  F.op(Opcode::I32Add);
  F.localSet(Acc);
  F.localGet(0);
  F.i32Const(1);
  F.op(Opcode::I32Sub);
  F.localTee(0);
  F.brIf(0);
  F.end();
  F.end();
  F.localGet(Acc);
  MB.exportFunc("hot", MB.funcIndex(F));

  EngineConfig Cfg = configByName("wizard-tiered");
  Cfg.TierUpThreshold = 100;
  Engine E(Cfg);
  WasmError Err;
  auto LM = E.load(MB.build(), &Err);
  if (!LM) {
    fprintf(stderr, "load failed: %s\n", Err.Message.c_str());
    return 1;
  }

  printf("tiered engine: threshold=%u backedges\n", Cfg.TierUpThreshold);
  std::vector<Value> Out;
  E.invoke(*LM, "hot", {Value::makeI32(2000000)}, &Out);
  printf("after hot run:    result=%d, compiled funcs=%zu, interp steps=%llu,"
         " jit cycles=%llu\n",
         Out[0].asI32(), LM->Codes.size(),
         (unsigned long long)E.thread().InterpSteps,
         (unsigned long long)E.thread().JitCycles);
  printf("  -> the loop tiered up mid-execution (OSR): both tiers ran.\n");

  // Attach a counter probe to the loop header: the engine recompiles with
  // the probe and stale frames tier down at their next checkpoint.
  OpcodeCountMonitor Loops;
  Loops.attach(*LM->Inst, E.probes(), Opcode::Loop);
  E.reinstrument(*LM); // Recompile with the probe; old frames deopt.
  uint64_t JitBefore = E.thread().JitCycles;
  E.invoke(*LM, "hot", {Value::makeI32(1000)}, &Out);
  printf("after probe attach: result=%d, loop-entry count=%llu, "
         "new jit cycles=%llu\n",
         Out[0].asI32(), (unsigned long long)Loops.total(),
         (unsigned long long)(E.thread().JitCycles - JitBefore));
  printf("  -> probes observed every loop entry without losing JIT speed.\n");
  return 0;
}
