//===- examples/codegen_explorer.cpp - inspect single-pass codegen ----------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The paper's Figure 1 as a tool: compiles one function under several
// configurations and prints the machine-code listings side by side so the
// effect of each abstract-interpretation optimization (constants, ISEL,
// multi-register allocation, tag modes) is visible instruction by
// instruction.
//
//===----------------------------------------------------------------------===//

#include "baselines/copypatch.h"
#include "baselines/twopass.h"
#include "opt/optcompiler.h"
#include "spc/compiler.h"
#include "wasm/builder.h"
#include "wasm/reader.h"
#include "wasm/validator.h"

#include <cstdio>

using namespace wisp;

int main() {
  // The function from the paper's running example family:
  //   f(a, b) = a + (b * 16) + 1, with a conditional early-out.
  ModuleBuilder MB;
  uint32_t T = MB.addType({ValType::I32, ValType::I32}, {ValType::I32});
  FuncBuilder &F = MB.addFunc(T);
  F.localGet(0);
  F.i32Const(100);
  F.op(Opcode::I32LtS);
  F.ifOp(BlockType::oneResult(ValType::I32));
  F.localGet(0);
  F.localGet(1);
  F.i32Const(16);
  F.op(Opcode::I32Mul);
  F.op(Opcode::I32Add);
  F.i32Const(1);
  F.op(Opcode::I32Add);
  F.elseOp();
  F.i32Const(0);
  F.end();
  MB.exportFunc("f", MB.funcIndex(F));

  WasmError Err;
  auto M = decodeModule(MB.build(), &Err);
  if (!M || !validateModule(*M, &Err)) {
    fprintf(stderr, "error: %s\n", Err.Message.c_str());
    return 1;
  }
  const FuncDecl &FD = M->Funcs[0];
  printf("wasm body: %u bytes, max stack %u, %zu side-table entries\n\n",
         FD.BodyEnd - FD.BodyStart, FD.MaxStack, FD.Table.Entries.size());

  struct Config {
    const char *Name;
    CompilerOptions Opts;
  };
  const Config Configs[] = {
      {"allopt (default)", CompilerOptions::allopt()},
      {"nok (no constants)", CompilerOptions::nok()},
      {"noisel", CompilerOptions::noisel()},
      {"nomr", CompilerOptions::nomr()},
      {"eager tags", CompilerOptions::withTags(TagMode::Eager)},
      {"stackmaps", CompilerOptions::withTags(TagMode::StackMap)},
  };
  for (const Config &C : Configs) {
    auto Code = compileFunction(*M, FD, C.Opts);
    printf("=== wizard-spc: %s ===\n%s", C.Name, Code->toString().c_str());
    printf("(%llu insts, %llu tag stores, %llu stackmap bytes)\n\n",
           (unsigned long long)Code->Stats.CodeInsts,
           (unsigned long long)Code->Stats.TagStores,
           (unsigned long long)Code->Stats.StackMapBytes);
  }

  warmCopyPatchTemplates();
  CompilerOptions NoGc;
  NoGc.Tags = TagMode::None;
  printf("=== wasm-now (copy&patch) ===\n%s\n",
         compileCopyPatch(*M, FD, NoGc)->toString().c_str());
  printf("=== wazero (two-pass) ===\n%s\n",
         compileTwoPass(*M, FD, NoGc)->toString().c_str());
  printf("=== optimizing tier ===\n%s\n",
         compileOptimizing(*M, FD, NoGc)->toString().c_str());
  return 0;
}
