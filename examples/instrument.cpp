//===- examples/instrument.cpp - instrumentation with probes ---------------===//
//
// Part of the wisp project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Demonstrates the paper's instrumentation story (§IV.D): a branch monitor
// profiles every conditional branch of a benchmark kernel, first in the
// interpreter and then in the JIT where probe sites compile to direct,
// accessor-free calls. Also shows function coverage counters.
//
//===----------------------------------------------------------------------===//

#include "engine/engine.h"
#include "engine/registry.h"
#include "instr/monitors.h"
#include "suites/suites.h"

#include <cstdio>

using namespace wisp;

int main() {
  // Pick one kernel from the generated Ostrich suite.
  LineItem Item;
  for (LineItem &I : ostrichSuite(1))
    if (I.Name == "crc")
      Item = std::move(I);

  for (const char *Tier : {"wizard-int", "wizard-spc"}) {
    EngineConfig Cfg = configByName(Tier);
    if (Cfg.Mode == ExecMode::Jit)
      Cfg.Mode = ExecMode::JitLazy; // Compile after probes attach.
    Engine E(Cfg);
    WasmError Err;
    auto LM = E.load(Item.Bytes, &Err);
    if (!LM) {
      fprintf(stderr, "load failed: %s\n", Err.Message.c_str());
      return 1;
    }

    BranchMonitor Branches;
    Branches.attach(*LM->Inst, E.probes());
    CoverageMonitor Coverage;
    Coverage.attach(*LM->Inst, E.probes());

    std::vector<Value> Out;
    if (E.invoke(*LM, "run", {}, &Out) != TrapReason::None) {
      fprintf(stderr, "trap!\n");
      return 1;
    }

    printf("=== %s on ostrich/%s ===\n", Tier, Item.Name.c_str());
    printf("result: %lld\n", (long long)Out[0].asI64());
    printf("functions executed: %u\n", Coverage.functionsExecuted());
    printf("conditional branches: %llu taken, %llu not taken over %zu sites\n",
           (unsigned long long)Branches.totalTaken(),
           (unsigned long long)Branches.totalNotTaken(),
           Branches.sites().size());
    // The five most biased sites.
    printf("hottest sites (func:offset taken/not):\n");
    std::vector<const BranchMonitor::Site *> Sites;
    for (const auto &S : Branches.sites())
      Sites.push_back(S.get());
    std::sort(Sites.begin(), Sites.end(),
              [](const BranchMonitor::Site *A, const BranchMonitor::Site *B) {
                return A->Taken + A->NotTaken > B->Taken + B->NotTaken;
              });
    for (size_t I = 0; I < Sites.size() && I < 5; ++I)
      printf("  f%u:+%-6u %10llu / %llu\n", Sites[I]->FuncIdx, Sites[I]->Ip,
             (unsigned long long)Sites[I]->Taken,
             (unsigned long long)Sites[I]->NotTaken);
  }
  return 0;
}
